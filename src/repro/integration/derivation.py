"""Derivation of integrated constraints (Section 5.2).

Three cases, following the paper:

**Object equality.**  All objective (conformed) constraints from both sides
union into the integrated set; an unsatisfiable union is an *explicit
conflict*.  From *subjective* constraints, global constraints are derived
through the decision functions, subject to the paper's two necessary
conditions on the subjective property set Ξ(φ):

1. no property in Ξ(φ) may have a conflict-**avoiding** decision function
   (its value never reaches the global property, so nothing propagates);
2. a property with a conflict-**settling** function requires a matching
   remote constraint on the equivalent property.

The derivation itself generalises the paper's examples: for each pair of DNF
branches of the local and remote constraints on a common subjective property
``p``, the branch literals over *objective* properties become the condition
``g``, the branch domains of ``p`` combine pointwise through the decision
function's combinator, and the result is ``g implies p ∈ D`` — reproducing
both ``trav_reimb ∈ {12, 17, 22}`` (unconditional, ``avg`` of two finite
sets) and ``publisher.name = 'ACM' implies rating >= 5`` (conditional).
Multi-property correlations derive only in the identical-pair case (same
conformed formula on both sides, all properties combined by one monotone
eliminating/settling combinator) — e.g. ``libprice <= shopprice`` *would*
derive under ``avg``/``avg`` but not under the example's ``trust`` functions.

**Strict similarity.**  The target class's constraints must be entailed by
the source's constraints plus the rule's intraobject conditions
(``Ω' ⊨ Ω``); a failed entailment is a :class:`SimilarityConflict` whose
repair is rule strengthening (Section 5.2.1's resolution).

**Approximate similarity.**  No conflicts arise; the virtual superclass
``Cv`` receives the disjunction of both constraint sets, and entailment of
one side's constraint by the other side's set flags horizontal
fragmentation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.constraints.ast import (
    Implies,
    Node,
    Path,
    TRUE,
    conjoin,
    disjoin,
    paths_in,
)
from repro.constraints.model import Constraint
from repro.constraints.normalize import split_conjunction
from repro.constraints.printer import to_source
from repro.constraints.solver import Solver, TypeEnvironment
from repro.domains.combine import combine_pointwise
from repro.domains.valueset import TopSet, ValueSet
from repro.errors import SolverError
from repro.integration.conflicts import (
    ExplicitConflict,
    ImplicitConflictRisk,
    SimilarityConflict,
)
from repro.integration.conformation import ConformationResult, ConformedPropeq
from repro.integration.decision import DecisionCategory
from repro.integration.relationships import Side
from repro.integration.rule_checks import RuleCheckResult, domain_to_formula
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification
from repro.integration.subjectivity import SubjectivityAnalysis


@dataclass(frozen=True)
class GlobalConstraint:
    """One constraint of the integrated view, with provenance."""

    name: str
    scope: str  # qualified global class name
    formula: Node
    origin: str  # objective-union | derived | rule-derived | key | cv-disjunction
    sources: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"[{self.origin}] {self.scope}: {to_source(self.formula)}"


@dataclass
class DerivationResult:
    """The integrated constraint set plus everything diagnostic."""

    constraints: list[GlobalConstraint] = field(default_factory=list)
    explicit_conflicts: list[ExplicitConflict] = field(default_factory=list)
    implicit_risks: list[ImplicitConflictRisk] = field(default_factory=list)
    similarity_conflicts: list[SimilarityConflict] = field(default_factory=list)
    #: Human-readable notes on skipped/blocked derivations (conditions 1-2).
    notes: list[str] = field(default_factory=list)
    #: Horizontal fragmentation findings for approximate similarity.
    fragmentations: list[str] = field(default_factory=list)

    def for_scope(self, scope: str) -> list[GlobalConstraint]:
        return [c for c in self.constraints if c.scope == scope]

    def formulas_for_scope(self, scope: str) -> list[Node]:
        return [c.formula for c in self.for_scope(scope)]


class ConstraintDeriver:
    """Runs the Section 5.2 analysis for one integration specification."""

    def __init__(
        self,
        spec: IntegrationSpecification,
        conformation: ConformationResult,
        analysis: SubjectivityAnalysis,
        rule_checks: RuleCheckResult,
    ):
        self.spec = spec
        self.conformation = conformation
        self.analysis = analysis
        self.rule_checks = rule_checks
        self.result = DerivationResult()
        self._counter = itertools.count(1)

    # -- public API ------------------------------------------------------------

    def run(self) -> DerivationResult:
        for rule in self.spec.equality_rules():
            self._derive_equality(rule)
        for rule in self.spec.descriptivity_rules():
            self._derive_descriptivity(rule)
        for rule in self.spec.similarity_rules():
            self._check_similarity(rule)
        for rule in self.spec.approximate_rules():
            self._derive_approximate(rule)
        self.result.notes = list(dict.fromkeys(self.result.notes))
        return self.result

    # -- shared helpers -----------------------------------------------------------

    def _qualified(self, side: Side, class_name: str) -> str:
        return f"{self.conformation.on(side).schema.name}.{class_name}"

    def _object_constraints(self, side: Side, class_name: str) -> list[Constraint]:
        schema = self.conformation.on(side).schema
        if not schema.has_class(class_name):
            return []
        return schema.effective_object_constraints(class_name)

    def _original_name(self, side: Side, conformed: Constraint) -> str:
        """Map a conformed constraint back to its original qualified name."""
        table = self.conformation.on(side).conformed_constraints
        for original, candidate in table.items():
            if candidate is conformed:
                return original
        return conformed.qualified_name

    def _is_subjective(self, side: Side, conformed: Constraint) -> bool:
        original = self._original_name(side, conformed)
        status = self.analysis.constraint_status.get(original)
        if status is not None:
            return status.subjective
        # Rule-derived constraints carry no original: treat as objective
        # facts about matched objects.
        return False

    def _env(self, side: Side, class_name: str) -> TypeEnvironment:
        schema = self.conformation.on(side).schema
        if schema.has_class(class_name):
            return schema.type_environment(class_name)
        return TypeEnvironment()

    def _propeq_for_conformed(
        self, side: Side, class_name: str, prop: str
    ) -> ConformedPropeq | None:
        schema = self.conformation.on(side).schema
        for propeq in self.conformation.propeqs:
            declared = propeq.local_class if side is Side.LOCAL else propeq.remote_class
            if propeq.name != prop:
                continue
            if schema.has_class(class_name) and schema.has_class(declared):
                if schema.is_subclass_of(class_name, declared):
                    return propeq
        return None

    def _subjective_props(
        self, side: Side, class_name: str, formula: Node
    ) -> dict[str, ConformedPropeq]:
        """Ξ(φ) over conformed names: property → its propeq."""
        found: dict[str, ConformedPropeq] = {}
        for path in paths_in(formula):
            prop = path.parts[0]
            propeq = self._propeq_for_conformed(side, class_name, prop)
            if propeq is None:
                continue
            objective_sides = propeq.df.objective_sides()
            if side not in objective_sides:
                found[prop] = propeq
        return found

    def _add(self, scope: str, formula: Node, origin: str, sources: tuple[str, ...]) -> None:
        existing = {
            (c.scope, c.formula) for c in self.result.constraints
        }
        if (scope, formula) in existing:
            return
        self.result.constraints.append(
            GlobalConstraint(
                f"gc{next(self._counter)}", scope, formula, origin, sources
            )
        )

    # -- equality ---------------------------------------------------------------------

    def _derive_equality(self, rule: ComparisonRule) -> None:
        """An Eq rule on (C, C') also relates objects of every subclass pair
        (the paper's ACM example pairs a ScientificPubl with a Proceedings
        under the Publication/Item rule), so derivation runs per pair."""
        assert rule.local_class and rule.remote_class
        local_schema = self.conformation.local.schema
        remote_schema = self.conformation.remote.schema
        local_classes = [rule.local_class]
        remote_classes = [rule.remote_class]
        if local_schema.has_class(rule.local_class):
            local_classes += local_schema.subclasses_of(rule.local_class)
        if remote_schema.has_class(rule.remote_class):
            remote_classes += remote_schema.subclasses_of(rule.remote_class)
        for local_class in local_classes:
            for remote_class in remote_classes:
                self._derive_equality_pair(rule, local_class, remote_class)

    def _derive_descriptivity(self, rule: ComparisonRule) -> None:
        """Descriptivity merges (virtual class vs. described class) analyse
        like equality pairs — this is where the implicit-conflict risk on
        the relocated ``name in KNOWNPUBLISHERS`` constraint surfaces."""
        value_side = rule.source_side.other
        conformed = self.conformation.on(value_side)
        for relocation in conformed.relocations:
            if relocation.value_attribute != rule.value_attribute:
                continue
            if relocation.virtual_class != f"Virt{rule.source_class}":
                continue
            assert rule.source_class is not None
            if value_side is Side.LOCAL:
                self._derive_equality_pair(
                    rule, relocation.virtual_class, rule.source_class
                )
            else:
                self._derive_equality_pair(
                    rule, rule.source_class, relocation.virtual_class
                )

    def _rule_derived(
        self, rule: ComparisonRule, side: Side, class_name: str
    ) -> list[Constraint]:
        """Derived constraints of *this* rule applying to ``class_name``
        (declared on it or an ancestor)."""
        schema = self.conformation.on(side).schema
        derived: list[Constraint] = []
        for analysis in self.rule_checks.analyses:
            if analysis.rule is not rule or analysis.side is not side:
                continue
            if schema.has_class(class_name) and schema.has_class(analysis.class_name):
                if schema.is_subclass_of(class_name, analysis.class_name):
                    derived.extend(analysis.derived)
        return derived

    def _derive_equality_pair(
        self, rule: ComparisonRule, local_class: str, remote_class: str
    ) -> None:
        scope = (
            f"{self._qualified(Side.LOCAL, local_class)}"
            f" ⋈ {self._qualified(Side.REMOTE, remote_class)}"
        )
        local_constraints = self._object_constraints(Side.LOCAL, local_class)
        remote_constraints = self._object_constraints(Side.REMOTE, remote_class)
        local_derived = self._rule_derived(rule, Side.LOCAL, local_class)
        remote_derived = self._rule_derived(rule, Side.REMOTE, remote_class)

        objective: list[tuple[Side, Constraint]] = []
        subjective: dict[Side, list[Constraint]] = {Side.LOCAL: [], Side.REMOTE: []}
        for side, pool in (
            (Side.LOCAL, local_constraints + local_derived),
            (Side.REMOTE, remote_constraints + remote_derived),
        ):
            for constraint in pool:
                if self._is_subjective(side, constraint):
                    subjective[side].append(constraint)
                else:
                    objective.append((side, constraint))

        # 1. Objective constraints union into the integrated set.
        env = self._env(Side.LOCAL, local_class).merged_with(
            self._env(Side.REMOTE, remote_class)
        )
        for side, constraint in objective:
            self._add(
                scope,
                constraint.formula,
                "objective-union",
                (self._original_name(side, constraint),),
            )

        # 2. Explicit conflict: the integrated set is unsatisfiable.
        formulas = [c.formula for _, c in objective]
        if formulas and Solver(env).is_unsatisfiable(conjoin(formulas)):
            self.result.explicit_conflicts.append(
                ExplicitConflict(
                    scope,
                    tuple(self._original_name(s, c) for s, c in objective),
                    "the union of objective object constraints is "
                    "unsatisfiable (Ω ⊨ false)",
                )
            )

        # 3. Derivation from subjective constraints.
        self._derive_subjective(
            scope, local_class, remote_class, subjective, env
        )

        # 4. Implicit conflict risks (conflict-ignoring functions).
        self._implicit_risks(
            scope, local_class, remote_class, objective
        )

    # -- subjective derivation ------------------------------------------------------------

    def _derive_subjective(
        self,
        scope: str,
        local_class: str,
        remote_class: str,
        subjective: dict[Side, list[Constraint]],
        env: TypeEnvironment,
    ) -> None:
        normalized: dict[Side, list[tuple[Constraint, Node]]] = {
            side: [
                (constraint, part)
                for constraint in constraints
                for part in split_conjunction(constraint.formula)
            ]
            for side, constraints in subjective.items()
        }
        class_of = {Side.LOCAL: local_class, Side.REMOTE: remote_class}

        # Single-property derivations, driven from the local side (the pair
        # (φ, φ') is symmetric; driving from one side avoids duplicates).
        seen_props: set[str] = set()
        for constraint, part in normalized[Side.LOCAL]:
            xi = self._subjective_props(Side.LOCAL, local_class, part)
            if not self._passes_conditions(
                Side.LOCAL, constraint, part, xi, normalized[Side.REMOTE],
                class_of,
            ):
                continue
            if len(xi) == 1:
                prop, propeq = next(iter(xi.items()))
                partners = [
                    (c, p)
                    for c, p in normalized[Side.REMOTE]
                    if prop in self._subjective_props(Side.REMOTE, remote_class, p)
                ]
                self._derive_single_property(
                    scope, prop, propeq, (constraint, part), partners, class_of, env
                )
                seen_props.add(prop)
            else:
                self._derive_identical_pair(
                    scope, xi, (constraint, part), normalized[Side.REMOTE], class_of
                )
        # Remote-only subjective constraints on props never touched above
        # still derive (combined with the local type domain).
        for constraint, part in normalized[Side.REMOTE]:
            xi = self._subjective_props(Side.REMOTE, remote_class, part)
            if len(xi) != 1:
                continue
            prop, propeq = next(iter(xi.items()))
            if prop in seen_props:
                continue
            if not self._passes_conditions(
                Side.REMOTE, constraint, part, xi, normalized[Side.LOCAL], class_of
            ):
                continue
            self._derive_single_property(
                scope, prop, propeq, (constraint, part), [], class_of, env,
                driving_side=Side.REMOTE,
            )

    def _passes_conditions(
        self,
        side: Side,
        constraint: Constraint,
        part: Node,
        xi: dict[str, ConformedPropeq],
        partners: list[tuple[Constraint, Node]],
        class_of: dict[Side, str],
    ) -> bool:
        """The paper's necessary conditions (1) and (2)."""
        if not xi:
            # Subjective for non-value reasons (declared): never propagates.
            self.result.notes.append(
                f"{constraint.qualified_name}: subjective by declaration; "
                "not propagated"
            )
            return False
        for prop, propeq in xi.items():
            category = propeq.df.category
            if category is DecisionCategory.AVOIDING:
                self.result.notes.append(
                    f"{constraint.qualified_name}: no derivation — property "
                    f"{prop!r} has a conflict-avoiding decision function "
                    f"({propeq.df.name}) [condition (1)]"
                )
                return False
            if category is DecisionCategory.SETTLING:
                other = side.other
                has_partner = any(
                    prop in self._subjective_props(other, class_of[other], p)
                    for _, p in partners
                )
                if not has_partner:
                    self.result.notes.append(
                        f"{constraint.qualified_name}: no derivation — "
                        f"settling function on {prop!r} needs a matching "
                        "constraint on the equivalent property "
                        "[condition (2)]"
                    )
                    return False
        return True

    def _derive_single_property(
        self,
        scope: str,
        prop: str,
        propeq: ConformedPropeq,
        driving: tuple[Constraint, Node],
        partners: list[tuple[Constraint, Node]],
        class_of: dict[Side, str],
        env: TypeEnvironment,
        driving_side: Side = Side.LOCAL,
    ) -> None:
        combinator = propeq.df.combinator
        if combinator is None:
            self.result.notes.append(
                f"{driving[0].qualified_name}: decision function "
                f"{propeq.df.name} admits no sound value combination"
            )
            return
        other_side = driving_side.other
        partner_formula = conjoin([p for _, p in partners]) if partners else None
        driving_env = self._env(driving_side, class_of[driving_side])
        partner_env = self._env(other_side, class_of[other_side])
        path = Path((prop,))
        type_domain_driving = driving_env.domain_for(path)
        type_domain_partner = partner_env.domain_for(path)
        global_type_domain = _global_type_domain(
            type_domain_driving, type_domain_partner, combinator
        )

        sources = tuple(
            sorted(
                {driving[0].qualified_name, *(c.qualified_name for c, _ in partners)}
            )
        )
        driving_formula = driving[1]
        driving_solver = Solver(driving_env)
        partner_solver = Solver(partner_env)

        def conditional_domain(condition: Node | None) -> ValueSet | None:
            """combine(domain(φ ∧ g, p), domain(φ' ∧ g, p)) — sound because
            every matched pair satisfying g keeps each side's value in its
            conditional domain."""
            local_premise = (
                driving_formula
                if condition is None
                else conjoin([driving_formula, condition])
            )
            partner_premise: Node
            if partner_formula is None:
                partner_premise = condition if condition is not None else TRUE
            else:
                partner_premise = (
                    partner_formula
                    if condition is None
                    else conjoin([partner_formula, condition])
                )
            driving_domain = driving_solver.domain_of(local_premise, path)
            partner_domain = partner_solver.domain_of(partner_premise, path)
            if driving_domain.is_empty() or partner_domain.is_empty():
                return None  # condition impossible on one side: no info
            try:
                if driving_side is Side.LOCAL:
                    return combine_pointwise(
                        driving_domain, partner_domain, combinator
                    )
                return combine_pointwise(partner_domain, driving_domain, combinator)
            except SolverError:
                return None

        # Unconditional derivation first (the intro's {12, 17, 22} case).
        unconditional = conditional_domain(None)
        if unconditional is not None:
            consequent = domain_to_formula(path, unconditional, global_type_domain)
            if consequent is not None:
                self._add(scope, consequent, "derived", sources)

        # Conditional derivations: one candidate condition per objective
        # atom (and its negation) appearing in either formula — the ACM case.
        formulas = [driving_formula]
        if partner_formula is not None:
            formulas.append(partner_formula)
        for condition in self._candidate_conditions(
            formulas, prop, class_of, driving_side
        ):
            combined = conditional_domain(condition)
            if combined is None:
                continue
            if unconditional is not None and unconditional.is_subset_of(combined):
                continue  # no tighter than the unconditional constraint
            consequent = domain_to_formula(path, combined, global_type_domain)
            if consequent is None:
                continue
            self._add(scope, Implies(condition, consequent), "derived", sources)

    def _candidate_conditions(
        self,
        formulas: list[Node],
        prop: str,
        class_of: dict[Side, str],
        driving_side: Side,
    ) -> list[Node]:
        """Objective-property atoms (both polarities) to condition on."""
        from repro.constraints.normalize import atoms_of, negate

        candidates: dict[Node, None] = {}
        for formula, side in zip(
            formulas, (driving_side, driving_side.other)
        ):
            try:
                atoms = atoms_of(formula)
            except SolverError:
                continue
            for atom in atoms:
                props = {p.parts[0] for p in paths_in(atom)}
                if prop in props or not props:
                    continue
                if any(
                    self._is_prop_subjective(side, class_of[side], q) for q in props
                ):
                    continue
                candidates.setdefault(atom, None)
                candidates.setdefault(negate(atom), None)
        return list(candidates)

    def _is_prop_subjective(self, side: Side, class_name: str, prop: str) -> bool:
        propeq = self._propeq_for_conformed(side, class_name, prop)
        if propeq is None:
            return False
        return side not in propeq.df.objective_sides()

    # -- identical multi-property pairs ------------------------------------------------

    def _derive_identical_pair(
        self,
        scope: str,
        xi: dict[str, ConformedPropeq],
        driving: tuple[Constraint, Node],
        remote_normalized: list[tuple[Constraint, Node]],
        class_of: dict[Side, str],
    ) -> None:
        """Correlated constraints derive only in the identical-pair case with
        one monotone combinator (see module docstring)."""
        constraint, part = driving
        combinators = {propeq.df.combinator for propeq in xi.values()}
        if len(combinators) != 1 or next(iter(combinators)) not in (
            "avg",
            "max",
            "min",
        ):
            self.result.notes.append(
                f"{constraint.qualified_name}: correlated subjective "
                "properties with mixed or non-monotone decision functions; "
                "general derivation is out of scope (paper, Section 5.2.1)"
            )
            return
        for partner, partner_part in remote_normalized:
            if partner_part == part:
                self._add(
                    scope,
                    part,
                    "derived",
                    (constraint.qualified_name, partner.qualified_name),
                )
                return
        self.result.notes.append(
            f"{constraint.qualified_name}: no identical remote constraint; "
            "correlated derivation skipped"
        )

    # -- implicit risks ---------------------------------------------------------------------

    def _implicit_risks(
        self,
        scope: str,
        local_class: str,
        remote_class: str,
        objective: list[tuple[Side, Constraint]],
    ) -> None:
        class_of = {Side.LOCAL: local_class, Side.REMOTE: remote_class}
        for side, constraint in objective:
            for path in paths_in(constraint.formula):
                prop = path.parts[0]
                propeq = self._propeq_for_conformed(side, class_of[side], prop)
                if propeq is None:
                    continue
                if propeq.df.category is not DecisionCategory.IGNORING:
                    continue
                other = side.other
                other_constraints = self._object_constraints(
                    other, class_of[other]
                )
                premise = conjoin([c.formula for c in other_constraints])
                env = self._env(other, class_of[other])
                if other_constraints and Solver(env).entails(
                    premise, constraint.formula
                ):
                    continue  # equivalent constraint exists on p'
                self.result.implicit_risks.append(
                    ImplicitConflictRisk(
                        scope,
                        self._original_name(side, constraint),
                        prop,
                        "the conflict-ignoring decision function may take "
                        "the global value from the unconstrained side",
                    )
                )

    # -- strict similarity ------------------------------------------------------------------

    def _check_similarity(self, rule: ComparisonRule) -> None:
        assert rule.source_class and rule.target_class
        source_side = rule.source_side
        target_side = source_side.other
        target_class = rule.target_class

        # Ω: all object constraints of the target class except those the
        # designer declared subjective (value subjectivity plays no role for
        # similar objects — Section 5.2.1).
        target_constraints = [
            c
            for c in self._object_constraints(target_side, target_class)
            if self._original_name(target_side, c)
            not in self.spec.declared_subjective
        ]
        analysis = self.rule_checks.analysis_for(rule)
        conditions = analysis.conditions if analysis is not None else []
        source_constraints = self._object_constraints(
            source_side, rule.source_class
        )
        premise = conjoin(
            [c.formula for c in source_constraints] + list(conditions)
        )
        # The entailment is about the *source* object's state, so on shared
        # conformed names the source side's types must win (a remote
        # Proceedings rating ranges over 1..10, not the library's converted
        # even points).
        env = self._env(target_side, target_class).merged_with(
            self._env(source_side, rule.source_class)
        )
        solver = Solver(env)
        unmet = tuple(
            c for c in target_constraints if not solver.entails(premise, c.formula)
        )
        if unmet:
            self.result.similarity_conflicts.append(SimilarityConflict(rule, unmet))
        else:
            self.result.notes.append(
                f"{rule.name}: source constraints entail all target "
                f"constraints (Ω' ⊨ Ω) — objects are valid "
                f"{target_class} members"
            )

    # -- approximate similarity --------------------------------------------------------------

    def _derive_approximate(self, rule: ComparisonRule) -> None:
        assert rule.source_class and rule.target_class and rule.virtual_class
        source_side = rule.source_side
        target_side = source_side.other
        source_constraints = self._object_constraints(
            source_side, rule.source_class
        )
        target_constraints = self._object_constraints(
            target_side, rule.target_class
        )
        source_formula = conjoin([c.formula for c in source_constraints])
        target_formula = conjoin([c.formula for c in target_constraints])
        self._add(
            rule.virtual_class,
            disjoin([target_formula, source_formula]),
            "cv-disjunction",
            tuple(
                c.qualified_name
                for c in source_constraints + target_constraints
            ),
        )
        # Horizontal fragmentation: the source constraints refute a target
        # constraint (the membership condition splits Cv).
        env = self._env(source_side, rule.source_class).merged_with(
            self._env(target_side, rule.target_class)
        )
        solver = Solver(env)
        from repro.constraints.normalize import negate

        for constraint in target_constraints:
            if solver.entails(source_formula, negate(constraint.formula)):
                self.result.fragmentations.append(
                    f"{rule.virtual_class}: {rule.source_class} and "
                    f"{rule.target_class} are horizontal fragments with "
                    f"membership condition {to_source(constraint.formula)}"
                )


def _global_type_domain(
    local: ValueSet, remote: ValueSet, combinator: str
) -> ValueSet:
    try:
        return combine_pointwise(local, remote, combinator)
    except SolverError:
        return TopSet()
