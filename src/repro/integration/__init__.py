"""Instance-based database interoperation with integrity constraints.

This package is the paper's primary contribution, end to end:

* the **integration specification** language of Section 2.2 — object
  comparison rules over the relationships Eq / Sim / approximate Sim /
  descriptivity (:mod:`~repro.integration.relationships`,
  :mod:`~repro.integration.rules`), property equivalence assertions with
  conversion and decision functions (:mod:`~repro.integration.propeq`,
  :mod:`~repro.integration.conversion`, :mod:`~repro.integration.decision`),
  collected and validated by :mod:`~repro.integration.spec`;
* the Section 3 checks relating rule conditions and object constraints
  (:mod:`~repro.integration.rule_checks`);
* the **conformation** phase of Section 4 for schemas, instances and
  constraints (:mod:`~repro.integration.conformation`,
  :mod:`~repro.integration.constraint_conformation`);
* the **merging** phase — rule matching, object merging, derived class
  hierarchy, the integrated view (:mod:`~repro.integration.matching`,
  :mod:`~repro.integration.merging`, :mod:`~repro.integration.hierarchy`,
  :mod:`~repro.integration.view`);
* **objectivity/subjectivity** analysis of Section 5.1
  (:mod:`~repro.integration.subjectivity`);
* **constraint integration** of Section 5.2 — global-constraint derivation,
  conflict detection and resolution options
  (:mod:`~repro.integration.derivation`,
  :mod:`~repro.integration.conflicts`,
  :mod:`~repro.integration.resolution`,
  :mod:`~repro.integration.class_constraints`,
  :mod:`~repro.integration.database_constraints`);
* the **workbench** implementing the Figure 3 methodology pipeline
  (:mod:`~repro.integration.workbench`, :mod:`~repro.integration.report`).
"""

from repro.integration.relationships import RelationshipKind
from repro.integration.rules import ComparisonRule
from repro.integration.propeq import PropertyEquivalence
from repro.integration.conversion import (
    ConversionFunction,
    IdentityConversion,
    LinearConversion,
    MappingConversion,
)
from repro.integration.decision import (
    AnyChoice,
    Average,
    DecisionCategory,
    DecisionFunction,
    Maximum,
    Minimum,
    Trust,
    Union,
)
from repro.integration.spec import IntegrationSpecification
from repro.integration.subjectivity import (
    PropertyStatus,
    SubjectivityAnalysis,
    analyse_subjectivity,
)
__all__ = [
    "RelationshipKind",
    "ComparisonRule",
    "PropertyEquivalence",
    "ConversionFunction",
    "IdentityConversion",
    "LinearConversion",
    "MappingConversion",
    "DecisionFunction",
    "DecisionCategory",
    "AnyChoice",
    "Trust",
    "Maximum",
    "Minimum",
    "Average",
    "Union",
    "IntegrationSpecification",
    "PropertyStatus",
    "SubjectivityAnalysis",
    "analyse_subjectivity",
]


def __getattr__(name):
    # Deferred imports: the workbench pulls in the whole pipeline; importing
    # it lazily keeps `import repro.integration` light and avoids cycles.
    if name in ("IntegrationWorkbench", "IntegrationResult"):
        from repro.integration import workbench

        return getattr(workbench, name)
    if name == "parse_specification":
        from repro.integration.spec_parser import parse_specification

        return parse_specification
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
