"""Global query optimisation with derived integrity constraints.

The paper's first motivation for global constraints: "Global integrity
constraints thus obtained could for example be used in optimising queries
against the integrated view, eliminating subqueries which are known to yield
empty results."

:class:`GlobalQueryOptimizer` does exactly that: a query predicate against a
global class is conjoined with every integrated constraint applicable to that
class; if the conjunction is unsatisfiable, the (sub)query is answered empty
without touching any extent.  The optimiser also simplifies disjunctive
predicates by pruning unsatisfiable disjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import Node, conjoin, disjoin
from repro.constraints.normalize import to_dnf
from repro.constraints.parser import parse_expression
from repro.constraints.printer import to_source
from repro.constraints.solver import Solver, TypeEnvironment
from repro.integration.relationships import Side
from repro.integration.workbench import IntegrationResult


@dataclass
class QueryDecision:
    """The optimiser's verdict on one (sub)query."""

    class_name: str
    predicate: Node
    empty: bool
    #: The constraints that proved emptiness (when ``empty``).
    reasons: tuple[str, ...] = ()

    def describe(self) -> str:
        verdict = "EMPTY (pruned)" if self.empty else "may yield results"
        return f"{self.class_name} where {to_source(self.predicate)}: {verdict}"


class GlobalQueryOptimizer:
    """See module docstring."""

    def __init__(self, result: IntegrationResult):
        if result.derivation is None or result.conformation is None:
            raise ValueError("run the workbench before optimising queries")
        self.result = result
        self._by_class: dict[str, list] = {}
        for constraint in result.global_constraints:
            for class_name in _scope_classes(constraint.scope):
                self._by_class.setdefault(class_name, []).append(constraint)

    # -- constraint lookup -------------------------------------------------------

    def constraints_for(self, class_name: str) -> list:
        """Integrated constraints applicable to a qualified global class.

        A constraint scoped to a pair ``A ⋈ B`` constrains objects in the
        intersection; for a query against ``A`` alone it applies only to the
        merged objects, so pair constraints are used when the query class
        participates in the pair.
        """
        return list(self._by_class.get(class_name, ()))

    def environment_for(self, class_name: str) -> TypeEnvironment:
        env = TypeEnvironment()
        for side in (Side.LOCAL, Side.REMOTE):
            conformed = self.result.conformation.on(side)  # type: ignore[union-attr]
            schema = conformed.schema
            prefix = f"{schema.name}."
            if class_name.startswith(prefix):
                bare = class_name[len(prefix):]
                if schema.has_class(bare):
                    env = env.merged_with(schema.type_environment(bare))
        return env

    # -- optimisation ---------------------------------------------------------------

    def analyse(self, class_name: str, predicate: "str | Node") -> QueryDecision:
        """Decide whether a query can be answered empty from constraints."""
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        constraints = self.constraints_for(class_name)
        env = self.environment_for(class_name)
        solver = Solver(env)
        formulas = [c.formula for c in constraints]
        if formulas and solver.is_unsatisfiable(
            conjoin(formulas + [predicate])
        ):
            culprits = _minimal_culprits(solver, formulas, predicate)
            names = tuple(
                constraints[formulas.index(f)].name for f in culprits
            )
            return QueryDecision(class_name, predicate, True, names)
        if solver.is_unsatisfiable(predicate):
            return QueryDecision(class_name, predicate, True, ("<predicate>",))
        return QueryDecision(class_name, predicate, False)

    def simplify(self, class_name: str, predicate: "str | Node") -> Node:
        """Drop disjuncts that the constraints refute.

        ``(rating < 5 and publisher.name = 'ACM') or rating >= 9`` over a
        scope deriving ``ACM implies rating >= 5`` simplifies to
        ``rating >= 9``.
        """
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        constraints = [c.formula for c in self.constraints_for(class_name)]
        if not constraints:
            return predicate
        solver = Solver(self.environment_for(class_name))
        base = conjoin(constraints)
        kept: list[Node] = []
        for branch in to_dnf(predicate):
            branch_formula = conjoin(list(branch))
            if solver.is_satisfiable(conjoin([base, branch_formula])):
                kept.append(branch_formula)
        return disjoin(kept)

    def execute(self, class_name: str, predicate: "str | Node"):
        """Answer a query, short-circuiting provably empty ones."""
        decision = self.analyse(class_name, predicate)
        if decision.empty:
            return []
        view = self.result.view
        if view is None:
            raise ValueError("no integrated view: workbench ran without stores")
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        return view.select(class_name, predicate)


def _scope_classes(scope: str) -> list[str]:
    return [part.strip() for part in scope.split("⋈")]


def _minimal_culprits(
    solver: Solver, formulas: list[Node], predicate: Node
) -> list[Node]:
    """A (greedy) minimal subset of constraints still refuting the predicate."""
    culprits = list(formulas)
    for formula in list(culprits):
        trial = [f for f in culprits if f is not formula]
        if solver.is_unsatisfiable(conjoin(trial + [predicate])):
            culprits = trial
    return culprits
