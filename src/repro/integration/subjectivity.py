"""Objectivity and subjectivity analysis (Section 5.1).

*Properties*: a property involved in a ``propeq`` inherits its status from
the decision function's category (Section 5.1.2) — see
:meth:`repro.integration.decision.DecisionFunction.objective_sides`.
Properties not involved in any equivalence have a single source and are
objective.

*Constraints* (Section 5.1.3): the consistency rule is **subjectivity of
values implies subjectivity of constraints** — a constraint involving any
subjective property is necessarily subjective.  The implication is
one-directional: the designer may declare constraints subjective even when
they involve only objective properties (business rules such as ``cc2`` of
Publication or the intro's ``salary < 1500``), but declaring a constraint
*objective* while it involves subjective properties makes the specification
inconsistent — reported as a violation.

Class constraints default to subjective ("as classifications themselves are
inherently subjective, so are class constraints", Section 5.2.2) and database
constraints are always subjective (Section 5.2.3); their exceptional
propagation cases are handled in :mod:`repro.integration.class_constraints`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constraints.ast import Path, paths_in
from repro.constraints.model import Constraint, ConstraintKind
from repro.errors import SpecificationError
from repro.integration.relationships import Side
from repro.integration.spec import IntegrationSpecification
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import ClassRef


class PropertyStatus(enum.Enum):
    OBJECTIVE = "objective"
    SUBJECTIVE = "subjective"


@dataclass(frozen=True)
class ConstraintStatus:
    """The objectivity verdict for one constraint, with its justification."""

    subjective: bool
    reason: str


@dataclass
class SubjectivityAnalysis:
    """The result of :func:`analyse_subjectivity`."""

    spec: IntegrationSpecification
    #: (side, declared class, property) → status, for propeq'd properties.
    property_status: dict[tuple[Side, str, str], PropertyStatus] = field(
        default_factory=dict
    )
    #: qualified constraint name → status.
    constraint_status: dict[str, ConstraintStatus] = field(default_factory=dict)
    #: Consistency violations (objective declarations over subjective values).
    violations: list[str] = field(default_factory=list)

    # -- property queries ------------------------------------------------------

    def status_of_property(self, side: Side, class_name: str, prop: str) -> PropertyStatus:
        """The status of ``class_name.prop`` on ``side`` (default objective).

        Propeq declarations on ancestors cover subclasses.
        """
        schema = self.spec.schema_on(side)
        for (s, declared_class, declared_prop), status in self.property_status.items():
            if s is not side or declared_prop != prop:
                continue
            if schema.has_class(class_name) and schema.has_class(declared_class):
                if schema.is_subclass_of(class_name, declared_class):
                    return status
        return PropertyStatus.OBJECTIVE

    def subjective_properties_in(
        self, constraint: Constraint, side: Side
    ) -> set[tuple[str, str]]:
        """The paper's Ξ(φ): subjective properties constrained by ``φ``.

        Returns ``(class, property)`` pairs, resolving dotted paths through
        reference attributes (``publisher.name`` on Proceedings resolves to
        ``Publisher.name``).
        """
        schema = self.spec.schema_on(side)
        found: set[tuple[str, str]] = set()
        owner = constraint.owner
        if owner is None:
            return found
        for path in paths_in(constraint.formula):
            for class_name, prop in _resolve_path(schema, owner, path):
                if (
                    self.status_of_property(side, class_name, prop)
                    is PropertyStatus.SUBJECTIVE
                ):
                    found.add((class_name, prop))
        return found

    # -- constraint queries ----------------------------------------------------------

    def is_subjective(self, constraint: Constraint) -> bool:
        status = self.constraint_status.get(constraint.qualified_name)
        if status is None:
            raise SpecificationError(
                f"constraint {constraint.qualified_name} was not analysed"
            )
        return status.subjective

    def reason_for(self, constraint: Constraint) -> str:
        return self.constraint_status[constraint.qualified_name].reason


def analyse_subjectivity(spec: IntegrationSpecification) -> SubjectivityAnalysis:
    """Run the Section 5.1 analysis over both schemas of ``spec``."""
    analysis = SubjectivityAnalysis(spec)
    _classify_properties(spec, analysis)
    for side in (Side.LOCAL, Side.REMOTE):
        schema = spec.schema_on(side)
        for constraint in schema.all_constraints():
            status = _classify_constraint(spec, analysis, schema, side, constraint)
            analysis.constraint_status[constraint.qualified_name] = status
    return analysis


def _classify_properties(
    spec: IntegrationSpecification, analysis: SubjectivityAnalysis
) -> None:
    for propeq in spec.propeqs:
        objective_sides = propeq.df.objective_sides()
        for side in (Side.LOCAL, Side.REMOTE):
            status = (
                PropertyStatus.OBJECTIVE
                if side in objective_sides
                else PropertyStatus.SUBJECTIVE
            )
            key = (side, propeq.class_on(side), propeq.property_on(side))
            # If several propeqs touch one property, subjectivity wins (any
            # source of value non-determinism taints the property).
            existing = analysis.property_status.get(key)
            if existing is PropertyStatus.SUBJECTIVE:
                continue
            analysis.property_status[key] = status


def _classify_constraint(
    spec: IntegrationSpecification,
    analysis: SubjectivityAnalysis,
    schema: DatabaseSchema,
    side: Side,
    constraint: Constraint,
) -> ConstraintStatus:
    name = constraint.qualified_name
    declared_subjective = name in spec.declared_subjective
    declared_objective = name in spec.declared_objective

    if constraint.kind is ConstraintKind.DATABASE:
        if declared_objective:
            analysis.violations.append(
                f"{name}: database constraints cannot be objective "
                "(Section 5.2.3)"
            )
        return ConstraintStatus(True, "database constraints are subjective")

    subjective_props = analysis.subjective_properties_in(constraint, side)
    if subjective_props:
        rendered = ", ".join(sorted(f"{c}.{p}" for c, p in subjective_props))
        if declared_objective:
            analysis.violations.append(
                f"{name}: declared objective but involves subjective "
                f"properties ({rendered}) — subjectivity of values implies "
                "subjectivity of constraints (Section 5.1.3)"
            )
        return ConstraintStatus(
            True, f"involves subjective properties: {rendered}"
        )

    if declared_subjective:
        return ConstraintStatus(True, "declared subjective by the designer")

    if constraint.kind is ConstraintKind.CLASS:
        if declared_objective:
            return ConstraintStatus(
                False, "class constraint declared objective by the designer"
            )
        return ConstraintStatus(
            True, "class constraints are subjective by default (Section 5.2.2)"
        )

    return ConstraintStatus(False, "objective by default")


def _resolve_path(
    schema: DatabaseSchema, owner: str, path: Path
) -> list[tuple[str, str]]:
    """Resolve a constraint path to the ``(class, property)`` pairs it reads.

    ``rating`` on Proceedings → ``[("Proceedings", "rating")]``;
    ``publisher.name`` → ``[("Proceedings", "publisher"),
    ("Publisher", "name")]``.  Unresolvable segments are skipped (validation
    reports them separately).
    """
    pairs: list[tuple[str, str]] = []
    current = owner
    for segment in path.parts:
        if not schema.has_class(current):
            break
        attributes = schema.effective_attributes(current)
        if segment not in attributes:
            break
        pairs.append((current, segment))
        tm_type = attributes[segment].tm_type
        if isinstance(tm_type, ClassRef):
            current = tm_type.class_name
        else:
            break
    return pairs
