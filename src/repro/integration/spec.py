"""The integration specification: rules + property equivalences + overrides.

An :class:`IntegrationSpecification` collects everything a designer writes in
Section 2.2 — object comparison rules, ``propeq`` assertions — plus the
Section 5.1.3 design decisions (which constraints are declared subjective /
objective) and presentation hints (names for virtual classes such as
``RefereedProceedings``).  :meth:`IntegrationSpecification.validate` performs
the well-formedness checks that do *not* need the constraint machinery;
semantic validation against constraints is the workbench's job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.integration.propeq import PropertyEquivalence
from repro.integration.relationships import RelationshipKind, Side
from repro.integration.rules import ComparisonRule
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import BoolType, RangeType, SetType, StringType
from repro.types.values import default_value


@dataclass(frozen=True)
class SpecificationIssue:
    """A structural problem in the integration specification."""

    location: str
    message: str

    def describe(self) -> str:
        return f"{self.location}: {self.message}"


class IntegrationSpecification:
    """See module docstring."""

    def __init__(self, local_schema: DatabaseSchema, remote_schema: DatabaseSchema):
        self.local_schema = local_schema
        self.remote_schema = remote_schema
        self.rules: list[ComparisonRule] = []
        self.propeqs: list[PropertyEquivalence] = []
        #: Qualified constraint names the designer declares subjective
        #: (business rules like CSLibrary.Publication.cc2 or the intro's
        #: salary < 1500).
        self.declared_subjective: set[str] = set()
        #: Qualified names of class constraints the designer insists are
        #: objective despite Section 5.2.2's default (must then be proved
        #: safe or enforced globally).
        self.declared_objective: set[str] = set()
        #: Naming hints for derived virtual classes, keyed by the frozenset
        #: of the two intersecting class names.
        self.virtual_class_names: dict[frozenset, str] = {}

    # -- construction ------------------------------------------------------------

    def add_rule(self, rule: ComparisonRule) -> ComparisonRule:
        self.rules.append(rule)
        return rule

    def add_propeq(self, propeq: PropertyEquivalence) -> PropertyEquivalence:
        self.propeqs.append(propeq)
        return propeq

    def declare_subjective(self, qualified_name: str) -> None:
        """Declare a constraint valid only in its database's own context."""
        self.declared_subjective.add(qualified_name)

    def declare_objective(self, qualified_name: str) -> None:
        """Insist a (class) constraint holds beyond its database's context."""
        self.declared_objective.add(qualified_name)

    def name_virtual_class(self, class_a: str, class_b: str, name: str) -> None:
        """Name the virtual class arising from the overlap of two classes
        (e.g. Proceedings ∩ RefereedPubl → ``RefereedProceedings``)."""
        self.virtual_class_names[frozenset((class_a, class_b))] = name

    # -- lookups ----------------------------------------------------------------------

    def schema_on(self, side: Side) -> DatabaseSchema:
        return self.local_schema if side is Side.LOCAL else self.remote_schema

    def equality_rules(self) -> list[ComparisonRule]:
        return [r for r in self.rules if r.kind is RelationshipKind.EQUALITY]

    def similarity_rules(self) -> list[ComparisonRule]:
        return [r for r in self.rules if r.kind is RelationshipKind.SIMILARITY]

    def approximate_rules(self) -> list[ComparisonRule]:
        return [
            r
            for r in self.rules
            if r.kind is RelationshipKind.APPROXIMATE_SIMILARITY
        ]

    def descriptivity_rules(self) -> list[ComparisonRule]:
        return [r for r in self.rules if r.kind is RelationshipKind.DESCRIPTIVITY]

    def propeq_for(self, side: Side, class_name: str, prop: str) -> PropertyEquivalence | None:
        """The propeq covering ``class_name.prop`` on ``side``.

        Property equivalences declared on an ancestor class apply to
        subclasses (the ``ourprice`` assertion on Publication covers
        RefereedPubl objects too).
        """
        schema = self.schema_on(side)
        for propeq in self.propeqs:
            declared = propeq.class_on(side)
            if propeq.property_on(side) != prop:
                continue
            if not schema.has_class(declared) or not schema.has_class(class_name):
                continue
            if schema.is_subclass_of(class_name, declared):
                return propeq
        return None

    def affected_classes(self, side: Side) -> set[str]:
        """Classes on ``side`` whose (deep) extents the integration can
        change — the complement of the paper's *objective extension*
        (Section 5.2.2).

        A class is affected if an equality or strict-similarity rule touches
        it or any of its subclasses (subclass members are members of the
        ancestor's deep extent), or if similarity adds remote objects to it.
        """
        schema = self.schema_on(side)
        affected: set[str] = set()
        for rule in self.rules:
            if rule.kind is RelationshipKind.EQUALITY:
                touched = rule.classes_on(side)
            elif rule.kind is RelationshipKind.SIMILARITY:
                # The target class gains objects; the source class's extent
                # itself does not change (its objects merely also classify
                # elsewhere).
                touched = (
                    {rule.target_class}
                    if side is not rule.source_side and rule.target_class
                    else set()
                )
            else:
                touched = set()
            for class_name in touched:
                if not schema.has_class(class_name):
                    continue
                for ancestor in schema.ancestors(class_name):
                    affected.add(ancestor.name)
        return affected

    # -- validation ----------------------------------------------------------------------

    def validate(self, raise_on_error: bool = False) -> list[SpecificationIssue]:
        issues: list[SpecificationIssue] = []
        self._validate_rules(issues)
        self._validate_propeqs(issues)
        self._validate_declarations(issues)
        if issues and raise_on_error:
            raise SpecificationError(
                "; ".join(issue.describe() for issue in issues)
            )
        return issues

    def _validate_rules(self, issues: list[SpecificationIssue]) -> None:
        for rule in self.rules:
            location = rule.name or rule.describe()
            if rule.kind is RelationshipKind.EQUALITY:
                if rule.local_class and not self.local_schema.has_class(rule.local_class):
                    issues.append(
                        SpecificationIssue(
                            location, f"unknown local class {rule.local_class!r}"
                        )
                    )
                if rule.remote_class and not self.remote_schema.has_class(
                    rule.remote_class
                ):
                    issues.append(
                        SpecificationIssue(
                            location, f"unknown remote class {rule.remote_class!r}"
                        )
                    )
            else:
                source_schema = self.schema_on(rule.source_side)
                target_schema = self.schema_on(rule.source_side.other)
                if rule.source_class and not source_schema.has_class(rule.source_class):
                    issues.append(
                        SpecificationIssue(
                            location,
                            f"unknown source class {rule.source_class!r} on "
                            f"{rule.source_side.value} side",
                        )
                    )
                if rule.target_class and not target_schema.has_class(rule.target_class):
                    issues.append(
                        SpecificationIssue(
                            location,
                            f"unknown target class {rule.target_class!r} on "
                            f"{rule.source_side.other.value} side",
                        )
                    )

    def _validate_propeqs(self, issues: list[SpecificationIssue]) -> None:
        conformed_names: dict[tuple[Side, str], set[str]] = {}
        for propeq in self.propeqs:
            location = propeq.describe_short()
            for side in (Side.LOCAL, Side.REMOTE):
                schema = self.schema_on(side)
                class_name = propeq.class_on(side)
                prop = propeq.property_on(side)
                if not schema.has_class(class_name):
                    issues.append(
                        SpecificationIssue(
                            location,
                            f"unknown {side.value} class {class_name!r}",
                        )
                    )
                    continue
                if prop not in schema.effective_attributes(class_name):
                    issues.append(
                        SpecificationIssue(
                            location,
                            f"{side.value} class {class_name} has no "
                            f"property {prop!r}",
                        )
                    )
                    continue
                self._check_df_idempotent(propeq, side, schema, class_name, prop, issues)
                key = (side, class_name)
                taken = conformed_names.setdefault(key, set())
                assert propeq.conformed_name is not None
                if propeq.conformed_name in taken:
                    issues.append(
                        SpecificationIssue(
                            location,
                            f"conformed name {propeq.conformed_name!r} already "
                            f"used on {side.value} class {class_name}",
                        )
                    )
                taken.add(propeq.conformed_name)

    def _check_df_idempotent(
        self,
        propeq: PropertyEquivalence,
        side: Side,
        schema: DatabaseSchema,
        class_name: str,
        prop: str,
        issues: list[SpecificationIssue],
    ) -> None:
        tm_type = schema.attribute_type(class_name, prop)
        samples = [default_value(tm_type)]
        if isinstance(tm_type, RangeType):
            samples.append(tm_type.high)
        elif isinstance(tm_type, BoolType):
            samples.append(True)
        elif isinstance(tm_type, StringType):
            samples.append("probe")
        elif isinstance(tm_type, SetType):
            samples.append(frozenset({"probe"}))
        try:
            converted = [propeq.cf_on(side).apply(value) for value in samples]
            propeq.df.check_idempotent(converted)
        except SpecificationError as exc:
            issues.append(SpecificationIssue(propeq.describe_short(), str(exc)))
        except Exception:
            # Conversion not applicable to the probe (e.g. mapping without an
            # entry): idempotence is checked on real values at merge time.
            pass

    def _validate_declarations(self, issues: list[SpecificationIssue]) -> None:
        known = {
            c.qualified_name
            for schema in (self.local_schema, self.remote_schema)
            for c in schema.all_constraints()
        }
        for name in sorted(self.declared_subjective | self.declared_objective):
            if name not in known:
                issues.append(
                    SpecificationIssue(
                        name, "declaration references an unknown constraint"
                    )
                )
        for name in sorted(self.declared_subjective & self.declared_objective):
            issues.append(
                SpecificationIssue(
                    name, "declared both subjective and objective"
                )
            )
