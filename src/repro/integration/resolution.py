"""Conflict resolution options (Section 5.2.1).

The paper identifies three ways to resolve a detected conflict:

1. *Change or ignore local and/or remote constraints* — in this framework,
   demote the constraint from objective to subjective;
2. *Change the object comparison rules* — conflicting constraints indicate
   the objects are not truly equivalent; for strict-similarity conflicts the
   concrete repair is to add the unmet target constraints as intraobject
   conditions (optionally with an approximate-similarity fallback rule for
   the objects the strengthened rule no longer covers);
3. *Change the decision functions* — altering a df changes which global
   constraints are derivable and removes value-subjectivity conflicts.

This module turns each conflict into concrete, applicable suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import Node, conjoin
from repro.constraints.printer import to_source
from repro.integration._rewrite import map_paths
from repro.integration.conflicts import (
    ExplicitConflict,
    ImplicitConflictRisk,
    SimilarityConflict,
)
from repro.integration.conformation import ConformationResult
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification


@dataclass(frozen=True)
class Suggestion:
    """One actionable repair suggestion."""

    option: int  # the paper's option number (1, 2 or 3)
    action: str  # machine-readable: demote-constraint | repair-rule | ...
    target: str  # what to change (constraint name, rule name, propeq)
    detail: str
    #: For rule repairs: the repaired rule, ready to substitute.
    repaired_rule: ComparisonRule | None = None
    #: For rule repairs: the optional approximate-similarity fallback.
    fallback_rule: ComparisonRule | None = None

    def describe(self) -> str:
        return f"option {self.option} [{self.action}] {self.target}: {self.detail}"


def suggest_for_explicit(
    conflict: ExplicitConflict, spec: IntegrationSpecification
) -> list[Suggestion]:
    """Suggestions for an explicit conflict among objective constraints."""
    suggestions = [
        Suggestion(
            1,
            "demote-constraint",
            name,
            "declare the constraint subjective so it no longer joins the "
            "integrated set",
        )
        for name in conflict.constraint_names
    ]
    suggestions.append(
        Suggestion(
            2,
            "revisit-rules",
            conflict.scope,
            "conflicting constraints may indicate the objects related by the "
            "equality rule are not truly equivalent; reconsider the rule "
            "conditions",
        )
    )
    return suggestions


def suggest_for_implicit_risk(
    risk: ImplicitConflictRisk, spec: IntegrationSpecification
) -> list[Suggestion]:
    """Suggestions for an implicit-conflict risk (conflict-ignoring df)."""
    return [
        Suggestion(
            3,
            "change-decision-function",
            risk.property_name,
            "replace the conflict-ignoring function (any) by a "
            "conflict-avoiding one (trust) so the constrained side supplies "
            "the global value",
        ),
        Suggestion(
            1,
            "demote-constraint",
            risk.constraint_name,
            "declare the constraint subjective if violations by the other "
            "database's values are acceptable",
        ),
    ]


def repair_similarity_rule(
    conflict: SimilarityConflict,
    conformation: ConformationResult,
) -> Suggestion:
    """The paper's strict-similarity repair: add the unmet constraints as
    intraobject conditions on the rule's source object.

    The added conditions are the unmet constraints *deconformed* back onto
    the source side's original attribute names (identity conversions only —
    with a non-identity conversion the condition is left in conformed terms
    and flagged), rebased on the rule variable:
    ``Sim(O':Proceedings, RefereedPubl) <- O'.ref? = true`` becomes
    ``... <- O'.ref? = true and O'.rating >= 4``.
    """
    rule = conflict.rule
    source_side = rule.source_side
    variable = source_side.variable
    conformed = conformation.on(source_side)
    assert rule.source_class is not None

    extra_conditions: list[Node] = []
    for constraint in conflict.unmet:
        formula = _deconform(conformed, rule.source_class, constraint.formula)
        rebased = map_paths(formula, lambda p: p.with_root(variable))
        extra_conditions.append(rebased)

    repaired = rule.strengthened(conjoin(extra_conditions))
    fallback = ComparisonRule.approximate_similarity(
        rule.source_class,
        rule.target_class or "",
        virtual_class=f"{rule.target_class}Like",
        condition=rule.condition,
        source_side=source_side,
    )
    added = " and ".join(to_source(c) for c in extra_conditions)
    return Suggestion(
        2,
        "repair-rule",
        rule.name,
        f"strengthen the condition with {added}; optionally add an "
        "approximate-similarity rule for source objects no longer covered",
        repaired_rule=repaired,
        fallback_rule=fallback,
    )


def _deconform(conformed, class_name: str, formula: Node) -> Node:
    """Map conformed attribute names back to the side's original names.

    Only renames are inverted; non-identity conversions would require
    inverse value mapping, so such constraints stay in conformed terms (the
    conformed and original scales agree for every case in the paper).
    """
    inverse: dict[str, str] = {}
    for declaring, renames in conformed.renames.items():
        for original, renamed in renames.items():
            inverse[renamed] = original
    from repro.integration._rewrite import rename_attributes

    return rename_attributes(formula, inverse)
