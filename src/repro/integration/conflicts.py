"""Conflict vocabulary for constraint integration (Sections 3 and 5.2).

* :class:`RuleConflict` — Section 3: a rule's intraobject conditions are
  inconsistent with the object constraints of the class they apply to.
* :class:`ExplicitConflict` — Section 5.2.1: the integrated object-constraint
  set is unsatisfiable (``⊨ false``).
* :class:`ImplicitConflictRisk` — Section 5.2.1: an objective constraint over
  a property with a conflict-*ignoring* decision function, with no equivalent
  constraint on the other side; the non-deterministic choice may produce a
  violating global state.
* :class:`StateViolation` — an *actual* implicit conflict: a merged global
  object violates an integrated constraint.
* :class:`SimilarityConflict` — Section 5.2.1 (strict similarity): the
  source objects' constraints plus the rule condition do not entail the
  target class's constraints (``Ω' ⊭ Ω``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.model import Constraint
from repro.integration.rules import ComparisonRule


@dataclass(frozen=True)
class RuleConflict:
    rule: ComparisonRule
    detail: str

    def describe(self) -> str:
        return f"rule {self.rule.name}: {self.detail}"


@dataclass(frozen=True)
class ExplicitConflict:
    scope: str
    constraint_names: tuple[str, ...]
    detail: str

    def describe(self) -> str:
        names = ", ".join(self.constraint_names)
        return f"explicit conflict on {self.scope} among {{{names}}}: {self.detail}"


@dataclass(frozen=True)
class ImplicitConflictRisk:
    scope: str
    constraint_name: str
    property_name: str
    detail: str

    def describe(self) -> str:
        return (
            f"implicit conflict risk on {self.scope}: objective constraint "
            f"{self.constraint_name} over conflict-ignored property "
            f"{self.property_name!r} — {self.detail}"
        )


@dataclass(frozen=True)
class StateViolation:
    scope: str
    constraint_name: str
    global_oid: str
    detail: str
    #: Subset-minimal conflict core over the integrated view (a
    #: :class:`repro.engine.explain.ConflictCore`-shaped object whose
    #: members are global oids), when the workbench could extract one.
    #: Excluded from equality so violation comparison stays structural.
    core: object = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        text = (
            f"global object {self.global_oid} violates {self.constraint_name} "
            f"({self.scope}): {self.detail}"
        )
        if self.core is not None:
            members = ", ".join(self.core.oids()) or "∅"
            text += f" [conflict core: {members}]"
        return text


@dataclass(frozen=True)
class SimilarityConflict:
    rule: ComparisonRule
    unmet: tuple[Constraint, ...]

    def describe(self) -> str:
        names = ", ".join(c.qualified_name for c in self.unmet)
        return (
            f"similarity rule {self.rule.name} does not guarantee the target "
            f"class's constraints: {{{names}}} are not entailed"
        )
