"""Parser for the paper's integration-specification surface syntax.

Section 2.2 writes specifications as plain text; this module makes that text
executable.  Accepted statements (one per line, ``#`` comments allowed):

.. code-block:: text

    Eq(O:Publication, O':Item) <- O.isbn = O'.isbn
    Eq(O:Publication.{publisher}, O':Publisher) <- O.publisher = O'.name
    Sim(O':Proceedings, RefereedPubl) <- O'.ref? = true
    Sim(O:ScientificPubl, Proceedings) <- contains(O.title, 'Proceed')
    Sim(O':Monograph, ProfessionalPubl, TradeBook) <- true
    propeq(Publication.ourprice, Item.libprice, id, id, trust(CSLibrary)) as libprice
    propeq(ScientificPubl.rating, Proceedings.rating, multiply(2), id, avg)
    subjective CSLibrary.Publication.cc2
    objective Bookseller.Item.cc1
    virtual(Proceedings, RefereedPubl) = RefereedProceedings

Conversion functions: ``id``, ``multiply(k)``, ``linear(k, c)``.
Decision functions: ``any``, ``trust(DatabaseName)``, ``max``, ``min``,
``avg``, ``union``.  The primed variable marks the remote side, matching the
paper's conventions.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.integration.conversion import (
    ConversionFunction,
    IdentityConversion,
    LinearConversion,
)
from repro.integration.decision import (
    AnyChoice,
    Average,
    DecisionFunction,
    Maximum,
    Minimum,
    Trust,
    Union,
)
from repro.integration.propeq import PropertyEquivalence
from repro.integration.relationships import Side
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification
from repro.tm.schema import DatabaseSchema

_EQ_RE = re.compile(
    r"^Eq\(\s*(O'?):(\w+)(?:\.\{(\w+)\})?\s*,\s*(O'?):(\w+)(?:\.\{(\w+)\})?\s*\)\s*"
    r"(?:<-\s*(.+))?$"
)
_SIM_RE = re.compile(
    r"^Sim\(\s*(O'?):(\w+)\s*,\s*(\w+)\s*(?:,\s*(\w+)\s*)?\)\s*(?:<-\s*(.+))?$"
)
# cf / df arguments may themselves carry parenthesised arguments
# (multiply(2), linear(2, 3), trust(CSLibrary)).
_FUNC = r"\w+(?:\([^)]*\))?"
_PROPEQ_RE = re.compile(
    rf"^propeq\(\s*(\w+)\.(\w+)\s*,\s*(\w+)\.(\w+)\s*,\s*({_FUNC})\s*,"
    rf"\s*({_FUNC})\s*,\s*({_FUNC})\s*\)\s*(?:as\s+(\w+))?$"
)
_VIRTUAL_RE = re.compile(r"^virtual\(\s*(\w+)\s*,\s*(\w+)\s*\)\s*=\s*(\w+)$")
_DECLARE_RE = re.compile(r"^(subjective|objective)\s+([\w.?]+)$")
_MULTIPLY_RE = re.compile(r"^multiply\(\s*(-?[\d.]+)\s*\)$")
_LINEAR_RE = re.compile(r"^linear\(\s*(-?[\d.]+)\s*,\s*(-?[\d.]+)\s*\)$")
_TRUST_RE = re.compile(r"^trust\(\s*(\w+)\s*\)$")


def parse_specification(
    source: str,
    local_schema: DatabaseSchema,
    remote_schema: DatabaseSchema,
) -> IntegrationSpecification:
    """Parse a textual specification against the two component schemas."""
    spec = IntegrationSpecification(local_schema, remote_schema)
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            _parse_statement(line, spec)
        except ParseError as exc:
            raise ParseError(
                f"{exc.message} (in spec statement {line!r})", line_number
            ) from exc
    return spec


def _parse_statement(line: str, spec: IntegrationSpecification) -> None:
    if line.startswith("Eq("):
        _parse_eq(line, spec)
        return
    if line.startswith("Sim("):
        _parse_sim(line, spec)
        return
    if line.startswith("propeq("):
        _parse_propeq(line, spec)
        return
    if line.startswith("virtual("):
        match = _VIRTUAL_RE.match(line)
        if not match:
            raise ParseError("malformed virtual-class naming")
        spec.name_virtual_class(match.group(1), match.group(2), match.group(3))
        return
    declare = _DECLARE_RE.match(line)
    if declare:
        if declare.group(1) == "subjective":
            spec.declare_subjective(declare.group(2))
        else:
            spec.declare_objective(declare.group(2))
        return
    raise ParseError("unrecognised specification statement")


def _side_of(variable: str) -> Side:
    return Side.REMOTE if variable == "O'" else Side.LOCAL


def _parse_eq(line: str, spec: IntegrationSpecification) -> None:
    match = _EQ_RE.match(line)
    if not match:
        raise ParseError("malformed Eq rule")
    var_a, class_a, attrs_a, var_b, class_b, attrs_b, condition = match.groups()
    condition = condition or "true"
    side_a, side_b = _side_of(var_a), _side_of(var_b)
    if side_a is side_b:
        raise ParseError("Eq rule must relate a local (O) and a remote (O') object")
    if attrs_a or attrs_b:
        # Descriptivity: Eq(O:Publication.{publisher}, O':Publisher) — the
        # object side is the one without the value-attribute braces.
        value_var, value_class, value_attr = (
            (var_a, class_a, attrs_a) if attrs_a else (var_b, class_b, attrs_b)
        )
        object_var, object_class = (var_b, class_b) if attrs_a else (var_a, class_a)
        object_attr = _described_attribute(condition, _side_of(object_var))
        spec.add_rule(
            ComparisonRule.descriptivity(
                source_class=object_class,
                target_class=value_class,
                value_attribute=value_attr,
                object_attribute=object_attr,
                condition=condition,
                source_side=_side_of(object_var),
            )
        )
        return
    local_class = class_a if side_a is Side.LOCAL else class_b
    remote_class = class_b if side_b is Side.REMOTE else class_a
    spec.add_rule(ComparisonRule.equality(local_class, remote_class, condition))


def _described_attribute(condition: str, object_side: Side) -> str:
    """The object-side attribute in a descriptivity condition
    (``O.publisher = O'.name`` → ``name`` when the object side is remote)."""
    variable = object_side.variable
    match = re.search(rf"{re.escape(variable)}\.([\w?]+)", condition)
    if not match:
        raise ParseError(
            "descriptivity condition must mention the described attribute"
        )
    return match.group(1)


def _parse_sim(line: str, spec: IntegrationSpecification) -> None:
    match = _SIM_RE.match(line)
    if not match:
        raise ParseError("malformed Sim rule")
    variable, source_class, target_class, virtual_class, condition = match.groups()
    condition = condition or "true"
    side = _side_of(variable)
    if virtual_class:
        spec.add_rule(
            ComparisonRule.approximate_similarity(
                source_class, target_class, virtual_class, condition, side
            )
        )
    else:
        spec.add_rule(
            ComparisonRule.similarity(source_class, target_class, condition, side)
        )


def _parse_propeq(line: str, spec: IntegrationSpecification) -> None:
    match = _PROPEQ_RE.match(line)
    if not match:
        raise ParseError("malformed propeq assertion")
    (
        local_class,
        local_prop,
        remote_class,
        remote_prop,
        local_cf,
        remote_cf,
        df,
        as_name,
    ) = match.groups()
    spec.add_propeq(
        PropertyEquivalence(
            local_class,
            local_prop,
            remote_class,
            remote_prop,
            local_cf=_parse_cf(local_cf.strip()),
            remote_cf=_parse_cf(remote_cf.strip()),
            df=_parse_df(df.strip(), spec),
            conformed_name=as_name,
        )
    )


def _parse_cf(text: str) -> ConversionFunction:
    if text == "id":
        return IdentityConversion()
    multiply = _MULTIPLY_RE.match(text)
    if multiply:
        return LinearConversion(_number(multiply.group(1)))
    linear = _LINEAR_RE.match(text)
    if linear:
        return LinearConversion(_number(linear.group(1)), _number(linear.group(2)))
    raise ParseError(f"unknown conversion function {text!r}")


def _parse_df(text: str, spec: IntegrationSpecification) -> DecisionFunction:
    if text == "any":
        return AnyChoice()
    if text == "max":
        return Maximum()
    if text == "min":
        return Minimum()
    if text == "avg":
        return Average()
    if text == "union":
        return Union()
    trust = _TRUST_RE.match(text)
    if trust:
        database = trust.group(1)
        if database == spec.local_schema.name:
            return Trust(Side.LOCAL, database)
        if database == spec.remote_schema.name:
            return Trust(Side.REMOTE, database)
        raise ParseError(
            f"trust({database}) names neither component database "
            f"({spec.local_schema.name} / {spec.remote_schema.name})"
        )
    raise ParseError(f"unknown decision function {text!r}")


def _number(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value
