"""The object-relationship vocabulary of Section 2.2.

The paper distinguishes four relationships a remote object ``O'`` can have to
local objects/classes (the *constituency* relationship of [VeA96] is noted as
irrelevant to constraints and omitted, as the paper does):

* **Equality** ``Eq(O', O)`` — same real-world object;
* **Strict similarity** ``Sim(O', C)`` — ``O'`` would locally be classified
  under ``C``;
* **Approximate similarity** ``Sim(O', C, Cv)`` — locally ``C ∪ {O'}`` can be
  regarded as a more general virtual class ``Cv``;
* **Descriptivity** ``Eq(O', O.S)`` / ``Sim(O', C.S)`` — ``O'`` is considered
  a set of values describing a local object/class.
"""

from __future__ import annotations

import enum


class RelationshipKind(enum.Enum):
    """Which of the paper's object relationships a comparison rule asserts."""

    EQUALITY = "equality"
    SIMILARITY = "similarity"
    APPROXIMATE_SIMILARITY = "approximate_similarity"
    DESCRIPTIVITY = "descriptivity"

    def describe(self) -> str:
        return {
            RelationshipKind.EQUALITY: "Eq(O, O')",
            RelationshipKind.SIMILARITY: "Sim(O', C)",
            RelationshipKind.APPROXIMATE_SIMILARITY: "Sim(O', C, Cv)",
            RelationshipKind.DESCRIPTIVITY: "Eq(O', O.S)",
        }[self]


class Side(enum.Enum):
    """Which component database an object/class/property belongs to.

    The paper's conventions: unprimed symbols are local (``s``), primed are
    remote (``s'``).
    """

    LOCAL = "local"
    REMOTE = "remote"

    @property
    def other(self) -> "Side":
        return Side.REMOTE if self is Side.LOCAL else Side.LOCAL

    @property
    def variable(self) -> str:
        """The rule-condition variable bound to this side's object."""
        return "O" if self is Side.LOCAL else "O'"
