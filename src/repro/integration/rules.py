"""Object comparison rules ``ρ <- Q`` (Section 2.2).

A rule asserts a relationship between objects when its condition holds.  The
condition is a conjunction of first-order predicates over the rule variables
``O`` (local object) and ``O'`` (remote object); Section 3 splits the
conjuncts into

* **interobject conditions** — involving both objects (``O.isbn = O'.isbn``);
* **intraobject conditions** — on one object only (``O'.ref? = true``), which
  behave like object constraints on that side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import Node, Path, conjoin, paths_in, TRUE
from repro.constraints.parser import parse_expression
from repro.constraints.printer import to_source
from repro.integration.relationships import RelationshipKind, Side


@dataclass
class ComparisonRule:
    """One object comparison rule.

    The meaning per relationship kind:

    * ``EQUALITY`` — ``Eq(O:local_class, O':remote_class) <- condition``;
    * ``SIMILARITY`` — ``Sim(source:source_class, target_class) <- cond``:
      the object of ``source_class`` (on ``source_side``) is classified under
      ``target_class`` of the *other* side;
    * ``APPROXIMATE_SIMILARITY`` — additionally names the common virtual
      class ``virtual_class``;
    * ``DESCRIPTIVITY`` — the ``source_side`` object of ``source_class`` is a
      value describing objects of ``target_class`` (other side) through
      attribute pair (``value_attribute``, ``object_attribute``).
    """

    kind: RelationshipKind
    local_class: str | None = None
    remote_class: str | None = None
    condition: Node = TRUE
    #: For similarity/descriptivity: which side the source object lives on.
    source_side: Side = Side.REMOTE
    source_class: str | None = None
    target_class: str | None = None
    virtual_class: str | None = None
    #: Descriptivity: the value-holding attribute on the target (value) side
    #: and the described attribute on the object side.
    value_attribute: str | None = None
    object_attribute: str | None = None
    name: str = ""

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def equality(local_class: str, remote_class: str, condition: str | Node) -> "ComparisonRule":
        """``Eq(O:local_class, O':remote_class) <- condition``."""
        return ComparisonRule(
            RelationshipKind.EQUALITY,
            local_class=local_class,
            remote_class=remote_class,
            condition=_parse(condition),
            name=f"Eq({local_class}, {remote_class})",
        )

    @staticmethod
    def similarity(
        source_class: str,
        target_class: str,
        condition: str | Node = TRUE,
        source_side: Side = Side.REMOTE,
    ) -> "ComparisonRule":
        """``Sim(source:source_class, target_class) <- condition``."""
        return ComparisonRule(
            RelationshipKind.SIMILARITY,
            condition=_parse(condition),
            source_side=source_side,
            source_class=source_class,
            target_class=target_class,
            name=f"Sim({source_class}, {target_class})",
        )

    @staticmethod
    def approximate_similarity(
        source_class: str,
        target_class: str,
        virtual_class: str,
        condition: str | Node = TRUE,
        source_side: Side = Side.REMOTE,
    ) -> "ComparisonRule":
        """``Sim(source:source_class, target_class, virtual_class) <- cond``."""
        return ComparisonRule(
            RelationshipKind.APPROXIMATE_SIMILARITY,
            condition=_parse(condition),
            source_side=source_side,
            source_class=source_class,
            target_class=target_class,
            virtual_class=virtual_class,
            name=f"Sim({source_class}, {target_class}, {virtual_class})",
        )

    @staticmethod
    def descriptivity(
        source_class: str,
        target_class: str,
        value_attribute: str,
        object_attribute: str,
        condition: str | Node = TRUE,
        source_side: Side = Side.REMOTE,
    ) -> "ComparisonRule":
        """``Eq(source:source_class, target.value_attribute) <- condition``.

        The paper's example: ``Eq(O:Publication.{publisher}, O':Publisher) <-
        O.publisher = O'.name`` is expressed as ``descriptivity("Publisher",
        "Publication", "publisher", "name")`` — Publisher objects (remote)
        describe the ``publisher`` value of local Publications through their
        ``name`` attribute.
        """
        return ComparisonRule(
            RelationshipKind.DESCRIPTIVITY,
            condition=_parse(condition),
            source_side=source_side,
            source_class=source_class,
            target_class=target_class,
            value_attribute=value_attribute,
            object_attribute=object_attribute,
            name=f"Descr({source_class}, {target_class}.{value_attribute})",
        )

    # -- condition analysis -------------------------------------------------------

    def condition_conjuncts(self) -> list[Node]:
        from repro.constraints.normalize import split_conjunction

        return split_conjunction(self.condition)

    def interobject_conditions(self) -> list[Node]:
        """Conjuncts that mention both ``O`` and ``O'``."""
        return [
            part
            for part in self.condition_conjuncts()
            if _sides_of(part) == {Side.LOCAL, Side.REMOTE}
        ]

    def intraobject_conditions(self, side: Side) -> list[Node]:
        """Conjuncts that mention only the object on ``side``."""
        return [
            part for part in self.condition_conjuncts() if _sides_of(part) == {side}
        ]

    def with_condition(self, condition: str | Node) -> "ComparisonRule":
        """A copy with a different (e.g. repaired) condition."""
        from dataclasses import replace

        return replace(self, condition=_parse(condition))

    def strengthened(self, extra: Node) -> "ComparisonRule":
        """A copy whose condition additionally requires ``extra``."""
        return self.with_condition(conjoin([self.condition, extra]))

    # -- sides ------------------------------------------------------------------------

    def classes_on(self, side: Side) -> set[str]:
        """The classes of ``side`` whose extents this rule can affect."""
        result: set[str] = set()
        if self.kind is RelationshipKind.EQUALITY:
            name = self.local_class if side is Side.LOCAL else self.remote_class
            if name:
                result.add(name)
        elif self.kind in (
            RelationshipKind.SIMILARITY,
            RelationshipKind.APPROXIMATE_SIMILARITY,
        ):
            if side is self.source_side:
                if self.source_class:
                    result.add(self.source_class)
            else:
                if self.target_class:
                    result.add(self.target_class)
        else:  # descriptivity
            if side is self.source_side:
                if self.source_class:
                    result.add(self.source_class)
            else:
                if self.target_class:
                    result.add(self.target_class)
        return result

    def describe(self) -> str:
        head = {
            RelationshipKind.EQUALITY: (
                f"Eq(O:{self.local_class}, O':{self.remote_class})"
            ),
            RelationshipKind.SIMILARITY: (
                f"Sim({self.source_side.variable}:{self.source_class}, "
                f"{self.target_class})"
            ),
            RelationshipKind.APPROXIMATE_SIMILARITY: (
                f"Sim({self.source_side.variable}:{self.source_class}, "
                f"{self.target_class}, {self.virtual_class})"
            ),
            RelationshipKind.DESCRIPTIVITY: (
                f"Eq({self.source_side.variable}:{self.source_class}, "
                f"{self.target_class}.{{{self.value_attribute}}})"
            ),
        }[self.kind]
        return f"{head} <- {to_source(self.condition)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<rule {self.describe()}>"


def _parse(condition: str | Node) -> Node:
    if isinstance(condition, str):
        return parse_expression(condition)
    return condition


def _sides_of(part: Node) -> set[Side]:
    """Which rule variables a condition conjunct mentions.

    Paths that do not start with a rule variable are treated as belonging to
    the rule's source object (bare attribute paths in similarity conditions).
    """
    sides: set[Side] = set()
    for path in paths_in(part):
        root = path.parts[0]
        if root == "O'":
            sides.add(Side.REMOTE)
        elif root == "O":
            sides.add(Side.LOCAL)
    return sides


def rebase_condition(part: Node, onto: Side) -> Node:
    """Strip rule-variable roots so the conjunct reads as an object constraint.

    ``O'.ref? = true`` becomes ``ref? = true`` — the form in which intraobject
    conditions are compared with object constraints (Section 3).
    """
    from repro.integration._rewrite import map_paths

    def strip(path: Path) -> Path:
        if path.parts[0] in ("O", "O'"):
            return Path(path.parts[1:])
        return path

    return map_paths(part, strip)
