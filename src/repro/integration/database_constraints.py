"""Integration of database constraints (Section 5.2.3).

"Database constraints should be regarded as subjective constraints.  The
complications of regarding a local database constraint as objective are
immense" — so every database constraint stays local, and the report explains
why, illustrating with the Figure 1 constraint ``db1`` (treating it as
objective would force the integrated view to invent an Item for every
publisher the *other* database knows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.integration.conformation import ConformationResult
from repro.integration.relationships import Side
from repro.integration.spec import IntegrationSpecification


@dataclass
class DatabaseConstraintReport:
    """All database constraints, each retained locally with a reason."""

    retained_locally: list[tuple[str, str]] = field(default_factory=list)


def integrate_database_constraints(
    spec: IntegrationSpecification, conformation: ConformationResult
) -> DatabaseConstraintReport:
    report = DatabaseConstraintReport()
    for side in (Side.LOCAL, Side.REMOTE):
        conformed = conformation.on(side)
        for constraint in conformed.schema.database_constraints:
            original = next(
                (
                    name
                    for name, candidate in conformed.conformed_constraints.items()
                    if candidate is constraint
                ),
                constraint.qualified_name,
            )
            report.retained_locally.append(
                (
                    original,
                    "database constraints are subjective (Section 5.2.3): "
                    "they remain enforced by their component database only",
                )
            )
    return report
