"""Decision functions (``df``) and the paper's four-way taxonomy.

A decision function determines the global value of a property from the
(conformed) local and remote values; the paper requires ``df(a, a) = a`` for
every decision function.  Section 5.1.2 classifies decision functions by how
they handle value conflicts, and derives the *subjectivity* of the underlying
properties from the class:

=====================  =========================  =============================
category               examples                   property subjectivity
=====================  =========================  =============================
conflict **ignoring**  ``any``                    both objective
conflict **avoiding**  ``trust(DB)``              trusted objective, other subj.
conflict **settling**  ``max``, ``min``           both subjective
conflict **eliminating**  ``avg``, ``union``      both subjective
=====================  =========================  =============================

For constraint derivation each decision function exposes ``combinator`` — the
pointwise domain operation of :mod:`repro.domains.combine` describing where
the global value can lie given local/remote value sets.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from typing import Any

from repro.errors import SpecificationError
from repro.integration.relationships import Side


class DecisionCategory(enum.Enum):
    """Section 5.1.2's four classes of decision functions."""

    IGNORING = "conflict ignoring"
    AVOIDING = "conflict avoiding"
    SETTLING = "conflict settling"
    ELIMINATING = "conflict eliminating"


class DecisionFunction:
    """Base class for decision functions."""

    name: str = "df"
    category: DecisionCategory

    def apply(self, local: Any, remote: Any) -> Any:
        """The global value for conformed local and remote values."""
        raise NotImplementedError

    @property
    def combinator(self) -> str | None:
        """The :mod:`repro.domains.combine` operation bounding the global
        value, or ``None`` when no sound combination exists (``any``)."""
        return None

    def objective_sides(self) -> frozenset[Side]:
        """Which sides' properties remain *objective* under this function."""
        if self.category is DecisionCategory.IGNORING:
            return frozenset({Side.LOCAL, Side.REMOTE})
        return frozenset()

    def check_idempotent(self, samples: Iterable[Any]) -> None:
        """Verify the paper's requirement ``df(a, a) = a`` on sample values."""
        for sample in samples:
            if self.apply(sample, sample) != sample:
                raise SpecificationError(
                    f"decision function {self.name} violates df(a, a) = a "
                    f"for a = {sample!r}"
                )

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<df {self.describe()} ({self.category.value})>"


class AnyChoice(DecisionFunction):
    """``any`` — conflict ignoring: non-deterministically either value.

    This implementation is deterministic (it returns the value of
    ``prefer``), but the *analysis* treats the choice as non-deterministic —
    that non-determinism is exactly what creates the paper's *implicit
    conflicts*.
    """

    category = DecisionCategory.IGNORING

    def __init__(self, prefer: Side = Side.LOCAL):
        self.prefer = prefer
        self.name = "any"

    def apply(self, local: Any, remote: Any) -> Any:
        return local if self.prefer is Side.LOCAL else remote


class Trust(DecisionFunction):
    """``trust(DB)`` — conflict avoiding: one database is the primary source."""

    category = DecisionCategory.AVOIDING

    def __init__(self, trusted: Side, label: str | None = None):
        self.trusted = trusted
        self.name = f"trust({label or trusted.value})"

    def apply(self, local: Any, remote: Any) -> Any:
        return local if self.trusted is Side.LOCAL else remote

    @property
    def combinator(self) -> str | None:
        return "first" if self.trusted is Side.LOCAL else "second"

    def objective_sides(self) -> frozenset[Side]:
        return frozenset({self.trusted})


class Maximum(DecisionFunction):
    """``max`` — conflict settling."""

    name = "max"
    category = DecisionCategory.SETTLING

    def apply(self, local: Any, remote: Any) -> Any:
        return max(local, remote)

    @property
    def combinator(self) -> str | None:
        return "max"


class Minimum(DecisionFunction):
    """``min`` — conflict settling."""

    name = "min"
    category = DecisionCategory.SETTLING

    def apply(self, local: Any, remote: Any) -> Any:
        return min(local, remote)

    @property
    def combinator(self) -> str | None:
        return "min"


class Average(DecisionFunction):
    """``avg`` — conflict eliminating; ``avg(a, a) = a`` holds as required."""

    name = "avg"
    category = DecisionCategory.ELIMINATING

    def apply(self, local: Any, remote: Any) -> Any:
        result = (local + remote) / 2
        if isinstance(result, float) and result.is_integer():
            return int(result)
        return result

    @property
    def combinator(self) -> str | None:
        return "avg"


class Union(DecisionFunction):
    """``union`` — conflict eliminating, for set-valued properties."""

    name = "union"
    category = DecisionCategory.ELIMINATING

    def apply(self, local: Any, remote: Any) -> Any:
        return frozenset(local) | frozenset(remote)

    @property
    def combinator(self) -> str | None:
        return None  # handled structurally, not via numeric domains
