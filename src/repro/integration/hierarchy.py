"""Deriving the integrated class hierarchy from extents (Section 2.3).

"A classification for the integrated view is now formed by applying both the
local and the remote classification to the global object set ...
relationships between local and remote classes may thus be detected; for
example, ``C isa C'`` iff every object of ``C`` is Eq- or Sim-related into
``C'``.  Thus, the global class hierarchy is a result of object relationships
rather than being defined explicitly."

For partially overlapping extents the paper derives *virtual* classes: "if it
turns out that some, but not all, of the objects in Proceedings and
RefereedPubl are similar, a virtual global subclass RefereedProceedings
containing these objects arises, which is a subclass of both".

The hierarchy is a :class:`networkx.DiGraph` whose edges point from subclass
to superclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.integration.conformation import ConformationResult
from repro.integration.relationships import Side
from repro.integration.view import IntegratedView


@dataclass
class DerivedHierarchy:
    """The integrated class hierarchy plus derivation notes."""

    graph: nx.DiGraph
    #: Cross-database subclass relationships detected from extents.
    derived_edges: list[tuple[str, str]] = field(default_factory=list)
    #: Pairs of classes with identical non-empty global extents.
    equivalent_classes: list[tuple[str, str]] = field(default_factory=list)
    #: Virtual intersection classes: name → (class_a, class_b).
    virtual_classes: dict[str, tuple[str, str]] = field(default_factory=dict)

    def is_subclass(self, child: str, parent: str) -> bool:
        if child == parent:
            return True
        return self.graph.has_node(child) and self.graph.has_node(parent) and nx.has_path(
            self.graph, child, parent
        )

    def parents_of(self, class_name: str) -> set[str]:
        if not self.graph.has_node(class_name):
            return set()
        return set(self.graph.successors(class_name))


def derive_hierarchy(
    view: IntegratedView, conformation: ConformationResult
) -> DerivedHierarchy:
    """Build the integrated hierarchy: declared isa edges + derived edges +
    virtual overlap classes."""
    graph = nx.DiGraph()
    result = DerivedHierarchy(graph)

    for side in (Side.LOCAL, Side.REMOTE):
        schema = conformation.on(side).schema
        for class_def in schema.classes.values():
            name = f"{schema.name}.{class_def.name}"
            graph.add_node(name, side=side.value, virtual=class_def.virtual)
            if class_def.parent:
                graph.add_edge(name, f"{schema.name}.{class_def.parent}")

    _derive_cross_edges(view, conformation, result)
    _derive_virtual_overlaps(view, conformation, result)
    _attach_approximate_virtuals(view, result)
    return result


def _derive_cross_edges(
    view: IntegratedView,
    conformation: ConformationResult,
    result: DerivedHierarchy,
) -> None:
    local_names = [
        f"{conformation.local.schema.name}.{c}"
        for c in conformation.local.schema.classes
    ]
    remote_names = [
        f"{conformation.remote.schema.name}.{c}"
        for c in conformation.remote.schema.classes
    ]
    for local_name in local_names:
        for remote_name in remote_names:
            left = view.extent_oids(local_name)
            right = view.extent_oids(remote_name)
            if not left or not right:
                continue
            if left == right:
                result.equivalent_classes.append((local_name, remote_name))
                result.graph.add_edge(local_name, remote_name)
                result.graph.add_edge(remote_name, local_name)
                result.derived_edges.append((local_name, remote_name))
                result.derived_edges.append((remote_name, local_name))
            elif left < right:
                result.graph.add_edge(local_name, remote_name)
                result.derived_edges.append((local_name, remote_name))
            elif right < left:
                result.graph.add_edge(remote_name, local_name)
                result.derived_edges.append((remote_name, local_name))


def _derive_virtual_overlaps(
    view: IntegratedView,
    conformation: ConformationResult,
    result: DerivedHierarchy,
) -> None:
    spec = view.spec
    local_schema = conformation.local.schema
    remote_schema = conformation.remote.schema
    for local_class in local_schema.classes:
        local_name = f"{local_schema.name}.{local_class}"
        left = view.extent_oids(local_name)
        if not left:
            continue
        for remote_class in remote_schema.classes:
            remote_name = f"{remote_schema.name}.{remote_class}"
            right = view.extent_oids(remote_name)
            if not right:
                continue
            overlap = left & right
            if not overlap or left <= right or right <= left:
                continue
            name = spec.virtual_class_names.get(
                frozenset((local_class, remote_class))
            ) or f"{local_class}_{remote_class}"
            result.virtual_classes[name] = (local_name, remote_name)
            result.graph.add_node(name, virtual=True, side="global")
            result.graph.add_edge(name, local_name)
            result.graph.add_edge(name, remote_name)
            result.derived_edges.append((name, local_name))
            result.derived_edges.append((name, remote_name))
            for oid in overlap:
                view.add_virtual_extent_member(name, oid)
    view.rebuild_extents()


def _attach_approximate_virtuals(view: IntegratedView, result: DerivedHierarchy) -> None:
    for virtual_class, parents in view.virtual_superclasses.items():
        result.graph.add_node(virtual_class, virtual=True, side="global")
        for parent in parents:
            # Cv is a *generalisation*: the named class is a subclass of Cv.
            result.graph.add_edge(parent, virtual_class)
