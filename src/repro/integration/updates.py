"""Global update validation with derived integrity constraints.

The paper's second motivation: global constraints can be used "in the
validation of update transactions, preventing the formulation of
subtransactions which will certainly be rejected by the local transaction
manager".

:class:`GlobalUpdateValidator` checks a proposed update of a global object
against (a) the integrated constraint set and (b) each component database's
own (conformed) object constraints as they would apply to the updated state —
so a doomed subtransaction is rejected *before* it is shipped to a component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.evaluate import EvaluationError, evaluate
from repro.engine.incremental import ConstraintDependencyIndex
from repro.constraints.printer import to_source
from repro.integration.decision import DecisionCategory
from repro.integration.relationships import Side
from repro.integration.workbench import IntegrationResult


@dataclass(frozen=True)
class Rejection:
    """One reason an update would fail."""

    level: str  # 'global' or a component database name
    constraint: str
    detail: str

    def describe(self) -> str:
        return f"[{self.level}] {self.constraint}: {self.detail}"


@dataclass
class UpdateVerdict:
    """The outcome of validating one proposed update."""

    global_oid: str
    changes: dict
    rejections: list[Rejection] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return not self.rejections

    def describe(self) -> str:
        if self.accepted:
            return f"update of {self.global_oid} accepted"
        reasons = "; ".join(r.describe() for r in self.rejections)
        return f"update of {self.global_oid} rejected: {reasons}"


class GlobalUpdateValidator:
    """See module docstring."""

    def __init__(self, result: IntegrationResult):
        if result.view is None or result.derivation is None:
            raise ValueError("run the workbench with stores before validating updates")
        self.result = result
        self.view = result.view

    def validate(self, global_oid: str, **changes) -> UpdateVerdict:
        """Validate updating ``global_oid``'s state with ``changes``."""
        verdict = UpdateVerdict(global_oid, changes)
        obj = self.view.get(global_oid)
        proposed = dict(obj.state)
        proposed.update(changes)

        self._check_global_constraints(obj, proposed, verdict)
        self._check_component_constraints(obj, proposed, verdict)
        return verdict

    # -- global level ---------------------------------------------------------------

    def _check_global_constraints(self, obj, proposed, verdict) -> None:
        for constraint in self.result.global_constraints:
            classes = [part.strip() for part in constraint.scope.split("⋈")]
            if not all(cls in obj.classes or self._virtual_member(cls, obj) for cls in classes):
                continue
            satisfied = self._evaluate(constraint.formula, proposed)
            if satisfied is False:
                verdict.rejections.append(
                    Rejection(
                        "global",
                        constraint.name,
                        f"violates {to_source(constraint.formula)} "
                        f"({constraint.origin})",
                    )
                )

    def _virtual_member(self, class_name: str, obj) -> bool:
        return self.view.has_class(class_name) and obj.oid in self.view.extent_oids(
            class_name
        )

    # -- component level ----------------------------------------------------------------

    def _check_component_constraints(self, obj, proposed, verdict) -> None:
        """A component's own constraints must hold on the state it would
        store — the subtransaction its transaction manager will see.

        A changed global value maps back to a component value through the
        decision function: a trusted side receives it, a conflict-ignored
        property may land on either side (checked on both), and settling /
        eliminating functions are not invertible — constraints over such
        properties cannot be pre-validated from the global state and are
        skipped (the derived *global* constraints cover them instead).
        """
        conformation = self.result.conformation
        assert conformation is not None
        changes = {
            key: value
            for key, value in proposed.items()
            if obj.state.get(key) != value
        }
        for side, component in obj.components.items():
            conformed = conformation.on(side)
            schema = conformed.schema
            if not schema.has_class(component.class_name):
                continue
            projected = dict(component.state)
            untranslatable: set[str] = set()
            for key, value in changes.items():
                if key not in component.state:
                    continue
                propeq = self._propeq_for(conformation, obj, key)
                if propeq is None:
                    projected[key] = value
                    continue
                category = propeq.df.category
                if category is DecisionCategory.AVOIDING:
                    trusted = getattr(propeq.df, "trusted", None)
                    if trusted is side:
                        projected[key] = value
                elif category is DecisionCategory.IGNORING:
                    projected[key] = value
                else:  # settling / eliminating: not invertible
                    untranslatable.add(key)
            index = ConstraintDependencyIndex.for_schema(schema)
            for constraint in schema.effective_object_constraints(
                component.class_name
            ):
                relevant = self._read_attrs(index, constraint)
                if relevant & untranslatable:
                    continue
                if not relevant & set(changes):
                    continue  # untouched by this update
                satisfied = self._evaluate_component(
                    constraint.formula, projected, conformation
                )
                if satisfied is False:
                    verdict.rejections.append(
                        Rejection(
                            schema.name,
                            constraint.qualified_name,
                            "the subtransaction would be rejected by this "
                            "component's transaction manager: "
                            f"{to_source(constraint.formula)}",
                        )
                    )

    @staticmethod
    def _read_attrs(index, constraint) -> set:
        """Attribute names ``constraint`` reads off the constrained object,
        per the engine's constraint-dependency index.  Unresolvable
        (universal) constraints report every attribute mentioned so they are
        never skipped."""
        entry = index.entry(constraint)
        if entry is None or entry.universal:
            return {path.parts[0] for path in _paths(constraint.formula)}
        return set(entry.own_attr_names())

    def _propeq_for(self, conformation, obj, name):
        local = obj.component_on(Side.LOCAL)
        remote = obj.component_on(Side.REMOTE)
        if local is None or remote is None:
            return None
        from repro.integration.merging import _conformed_propeq_for

        return _conformed_propeq_for(conformation, local, remote, name)

    def _evaluate_component(self, formula, state: dict, conformation) -> bool | None:
        """Evaluate against a conformed component state, dereferencing
        conformed object ids through the conformation's instances."""
        instances = {
            obj.oid: obj
            for side in (Side.LOCAL, Side.REMOTE)
            for obj in conformation.on(side).instances
        }

        def get_attr(obj, name):
            from repro.integration.conformation import ConformedObject

            if isinstance(obj, ConformedObject):
                value = obj.state[name]
            elif isinstance(obj, dict):
                value = obj[name]
            else:
                raise EvaluationError(f"cannot read {name!r} from {obj!r}")
            if isinstance(value, str) and value in instances:
                return instances[value]
            return value

        constants: dict = {}
        constants.update(conformation.remote.schema.constants)
        constants.update(conformation.local.schema.constants)
        from repro.constraints.evaluate import EvalContext

        try:
            return bool(
                evaluate(
                    formula,
                    EvalContext(
                        current=state, constants=constants, get_attr=get_attr
                    ),
                )
            )
        except EvaluationError:
            return None

    def _evaluate(self, formula, state: dict) -> bool | None:
        # Plain dict states flow through the view's accessor, which still
        # dereferences global object ids for paths like publisher.name.
        try:
            return bool(evaluate(formula, self.view.eval_context(current=state)))
        except EvaluationError:
            return None


def _paths(formula):
    from repro.constraints.ast import paths_in

    return paths_in(formula)
