"""Conformation of constraints (Section 4).

"Conversions applied to objects and properties in the conformation phase must
be propagated to the formulation of constraints" — the paper's *semantic
normalisation*.  The four subtasks:

1. **Allocating constraints to conformed classes.**  A constraint whose paths
   all use a virtualised value attribute moves to the virtual class
   (``oc2: publisher in KNOWNPUBLISHERS`` becomes ``name in KNOWNPUBLISHERS``
   on ``VirtPublisher``); mixed uses rewrite the value position into a dotted
   reference path.  Conversely, hiding a class drops constraints that involve
   its hidden properties, and re-expresses constraints on the surviving
   attribute onto the casting class.

2. **Attribute substitution.**  Conformed names replace local names at every
   path segment, in key-constraint attribute lists and aggregate ``over``
   attributes.

3. **Domain conversion.**  Constants compared with a converted property pass
   through the conversion function: ``rating >= 2`` under ``multiply(2)``
   becomes ``rating >= 4``.  Aggregate comparisons over converted properties
   convert when the conversion is purely multiplicative (``avg(rating) < 4``
   becomes ``avg(rating) < 8``).

4. **Derived attributes** may carry constraints too; constraints written on
   registered derived attributes are conformed like ordinary ones (the
   fixture specs do not use them).

The conformed constraints are attached to the conformed schema and indexed by
their original qualified name in ``ConformedDatabase.conformed_constraints``;
dropped constraints are recorded with a reason.
"""

from __future__ import annotations

from repro.constraints.ast import (
    Aggregate,
    Comparison,
    Literal,
    NamedConstant,
    Node,
    Path,
    Quantified,
    paths_in,
)
from repro.constraints.model import Constraint
from repro.errors import ConformationError
from repro.integration._rewrite import convert_domains, map_paths, rename_attributes
from repro.integration.conformation import ConformedDatabase, Hiding, Relocation
from repro.types.primitives import ClassRef


def conform_constraints(conformed: ConformedDatabase) -> None:
    """Conform every constraint of the original schema (see module doc)."""
    hidden_classes = {h.hidden_class for h in conformed.hidings}
    for class_def in conformed.original_schema.classes.values():
        for constraint in class_def.constraints:
            if class_def.name in hidden_classes:
                _conform_hidden_class_constraint(conformed, class_def.name, constraint)
                continue
            _conform_class_owned_constraint(conformed, class_def.name, constraint)
    for constraint in conformed.original_schema.database_constraints:
        _conform_database_constraint(conformed, constraint)


# ---------------------------------------------------------------------------
# constraints owned by surviving classes
# ---------------------------------------------------------------------------


def _conform_class_owned_constraint(
    conformed: ConformedDatabase, owner: str, constraint: Constraint
) -> None:
    relocation = _full_relocation(conformed, owner, constraint.formula)
    if relocation is not None:
        _reallocate_to_virtual(conformed, owner, constraint, relocation)
        return
    formula = _rewrite_relocated_paths(conformed, owner, constraint.formula)
    formula, dropped_reason = _rewrite_hidden_paths(conformed, owner, formula)
    if dropped_reason:
        conformed.dropped_constraints.append(  # type: ignore[attr-defined]
            (constraint.qualified_name, dropped_reason)
        )
        return
    formula = _substitute_and_convert(conformed, owner, formula)
    result = constraint.with_formula(formula).with_owner(owner)
    _attach(conformed, owner, constraint, result)


def _full_relocation(
    conformed: ConformedDatabase, owner: str, formula: Node
) -> Relocation | None:
    """The relocation to apply when *every* path uses the relocated value."""
    paths = paths_in(formula)
    if not paths:
        return None
    found: Relocation | None = None
    for path in paths:
        relocation = _relocation_of(conformed, owner, path.parts[0])
        if relocation is None:
            return None
        if found is not None and relocation != found:
            return None
        found = relocation
    return found


def _relocation_of(
    conformed: ConformedDatabase, owner: str, attribute: str
) -> Relocation | None:
    schema = conformed.original_schema
    for relocation in conformed.relocations:
        if relocation.value_attribute != attribute:
            continue
        if schema.has_class(owner) and schema.is_subclass_of(
            owner, relocation.class_name
        ):
            return relocation
    return None


def _reallocate_to_virtual(
    conformed: ConformedDatabase,
    owner: str,
    constraint: Constraint,
    relocation: Relocation,
) -> None:
    """Subtask 1: move the constraint onto the virtual class."""
    formula = rename_attributes(
        constraint.formula, {relocation.value_attribute: relocation.object_attribute}
    )
    result = constraint.with_formula(formula).with_owner(relocation.virtual_class)
    conformed.notes.append(
        f"constraint {constraint.qualified_name} reallocated to "
        f"{relocation.virtual_class}"
    )
    _attach(conformed, relocation.virtual_class, constraint, result)


def _rewrite_relocated_paths(
    conformed: ConformedDatabase, owner: str, formula: Node
) -> Node:
    """Mixed use of a virtualised attribute: value position becomes a dotted
    reference path (``publisher`` → ``publisher.name``)."""

    def rewrite(path: Path) -> Path:
        relocation = _relocation_of(conformed, owner, path.parts[0])
        if relocation is not None and len(path.parts) == 1:
            return Path((relocation.value_attribute, relocation.object_attribute))
        return path

    return map_paths(formula, rewrite)


def _rewrite_hidden_paths(
    conformed: ConformedDatabase, owner: str, formula: Node
) -> tuple[Node, str | None]:
    """Paths through a hidden class collapse onto the casting value
    (``publisher.name`` → ``publisher``); deeper hidden properties drop the
    whole constraint."""
    dropped: list[str] = []

    def rewrite(path: Path) -> Path:
        hiding = _hiding_of(conformed, owner, path.parts[0])
        if hiding is None:
            return path
        if len(path.parts) == 2 and path.parts[1] == hiding.object_attribute:
            return Path((hiding.value_attribute,))
        if len(path.parts) >= 2:
            dropped.append(path.dotted())
        return path

    rebuilt = map_paths(formula, rewrite)
    if dropped:
        return rebuilt, (
            "references hidden properties through "
            + ", ".join(sorted(set(dropped)))
        )
    return rebuilt, None


def _hiding_of(
    conformed: ConformedDatabase, owner: str, attribute: str
) -> Hiding | None:
    schema = conformed.original_schema
    for hiding in conformed.hidings:
        if hiding.value_attribute != attribute:
            continue
        if schema.has_class(owner) and schema.has_class(hiding.casting_class):
            if schema.is_subclass_of(owner, hiding.casting_class):
                return hiding
    return None


# ---------------------------------------------------------------------------
# constraints owned by hidden classes
# ---------------------------------------------------------------------------


def _conform_hidden_class_constraint(
    conformed: ConformedDatabase, owner: str, constraint: Constraint
) -> None:
    """A hidden class's constraint survives only if it involves nothing but
    the surviving (describing) attribute; it is then re-expressed on each
    casting class."""
    hidings = [h for h in conformed.hidings if h.hidden_class == owner]
    surviving = {h.object_attribute for h in hidings}
    used = {path.parts[0] for path in paths_in(constraint.formula)}
    if not used <= surviving:
        conformed.dropped_constraints.append(  # type: ignore[attr-defined]
            (
                constraint.qualified_name,
                f"class {owner} was hidden and the constraint uses hidden "
                f"properties {sorted(used - surviving)}",
            )
        )
        return
    for hiding in hidings:
        formula = rename_attributes(
            constraint.formula, {hiding.object_attribute: hiding.value_attribute}
        )
        formula = _substitute_and_convert(conformed, hiding.casting_class, formula)
        result = constraint.with_formula(formula).with_owner(hiding.casting_class)
        conformed.notes.append(
            f"constraint {constraint.qualified_name} re-expressed on "
            f"{hiding.casting_class}.{hiding.value_attribute}"
        )
        _attach(conformed, hiding.casting_class, constraint, result)


# ---------------------------------------------------------------------------
# subtasks 2 + 3: substitution and domain conversion
# ---------------------------------------------------------------------------


def conform_formula(conformed: ConformedDatabase, owner: str, formula: Node) -> Node:
    """Conform an arbitrary formula written against ``owner``'s original
    attributes (used for rule conditions, which share the constraint
    language)."""
    formula = _rewrite_relocated_paths(conformed, owner, formula)
    formula, dropped = _rewrite_hidden_paths(conformed, owner, formula)
    if dropped:
        raise ConformationError(dropped)
    return _substitute_and_convert(conformed, owner, formula)


def _substitute_and_convert(
    conformed: ConformedDatabase, owner: str, formula: Node
) -> Node:
    formula = _rename_deep(conformed, owner, formula)
    conversions = {
        conformed.conformed_attribute_name(owner, original): cf
        for original, cf in conformed.conversion_map(owner).items()
    }
    if conversions:
        formula = _fold_scalar_constants(conformed, formula)
        formula = _convert_aggregates(formula, conversions)
        formula = convert_domains(formula, conversions)
    return formula


def _rename_deep(conformed: ConformedDatabase, owner: str, formula: Node) -> Node:
    """Attribute substitution along dotted paths.

    The first segment renames by the owner's map; subsequent segments by the
    map of the class each reference points at (resolved in the *original*
    schema).
    """
    schema = conformed.original_schema

    def rewrite(path: Path) -> Path:
        segments = []
        current = owner
        for segment in path.parts:
            renamed = conformed.conformed_attribute_name(current, segment) if (
                schema.has_class(current)
            ) else segment
            segments.append(renamed)
            if schema.has_class(current):
                attributes = schema.effective_attributes(current)
                if segment in attributes and isinstance(
                    attributes[segment].tm_type, ClassRef
                ):
                    current = attributes[segment].tm_type.class_name
                    continue
            current = ""  # no further type info
        return Path(tuple(segments))

    renamed = map_paths(formula, rewrite)
    return rename_attributes(renamed, conformed.rename_map(owner))


def _fold_scalar_constants(conformed: ConformedDatabase, formula: Node) -> Node:
    """Bind scalar named constants so conversion can rewrite them."""
    constants = conformed.original_schema.constants

    def fold(node: Node) -> Node:
        if isinstance(node, Comparison):
            left, right = node.left, node.right
            if isinstance(left, NamedConstant) and _is_scalar(constants.get(left.name)):
                left = Literal(constants[left.name])
            if isinstance(right, NamedConstant) and _is_scalar(constants.get(right.name)):
                right = Literal(constants[right.name])
            return Comparison(node.op, left, right)
        return node

    # Only comparisons need folding; traverse shallowly through connectives.
    from repro.constraints.ast import And, Implies, Not, Or

    if isinstance(formula, Comparison):
        return fold(formula)
    if isinstance(formula, Not):
        return Not(_fold_scalar_constants(conformed, formula.operand))
    if isinstance(formula, And):
        return And(
            tuple(_fold_scalar_constants(conformed, p) for p in formula.parts)
        )
    if isinstance(formula, Or):
        return Or(tuple(_fold_scalar_constants(conformed, p) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(
            _fold_scalar_constants(conformed, formula.antecedent),
            _fold_scalar_constants(conformed, formula.consequent),
        )
    return formula


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _convert_aggregates(formula: Node, conversions) -> Node:
    """Convert aggregate comparisons over converted attributes.

    Only purely multiplicative linear conversions commute with ``sum`` /
    ``avg`` / ``min`` / ``max``; anything else raises so the caller can
    surface a conformation error instead of producing a wrong constraint.
    """
    from repro.integration.conversion import LinearConversion

    if isinstance(formula, Comparison):
        agg, other, mirrored = None, None, False
        if isinstance(formula.left, Aggregate):
            agg, other = formula.left, formula.right
        elif isinstance(formula.right, Aggregate):
            agg, other, mirrored = formula.right, formula.left, True
        if agg is None or agg.over not in conversions:
            return formula
        cf = conversions[agg.over]
        commutes = (
            isinstance(cf, LinearConversion)
            and cf.offset == 0
            and agg.func in ("sum", "avg", "min", "max")
        )
        if not commutes:
            raise ConformationError(
                f"cannot conform aggregate {agg.func} over converted "
                f"attribute {agg.over!r}: conversion {cf.name} does not "
                "commute with the aggregate"
            )
        if not isinstance(other, Literal):
            raise ConformationError(
                f"cannot convert aggregate comparison with non-constant "
                f"operand {other!r}"
            )
        value, op = cf.convert_constant(
            other.value, formula.op if not mirrored else formula.mirrored().op
        )
        if mirrored:
            return Comparison(op, agg, Literal(value)).mirrored()
        return Comparison(op, agg, Literal(value))
    from repro.constraints.ast import And, Implies, Not, Or

    if isinstance(formula, Not):
        return Not(_convert_aggregates(formula.operand, conversions))
    if isinstance(formula, And):
        return And(tuple(_convert_aggregates(p, conversions) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(_convert_aggregates(p, conversions) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(
            _convert_aggregates(formula.antecedent, conversions),
            _convert_aggregates(formula.consequent, conversions),
        )
    return formula


# ---------------------------------------------------------------------------
# database constraints
# ---------------------------------------------------------------------------


def _conform_database_constraint(
    conformed: ConformedDatabase, constraint: Constraint
) -> None:
    hidden_classes = {h.hidden_class for h in conformed.hidings}
    quantified = [
        node
        for node in constraint.formula.walk()
        if isinstance(node, Quantified)
    ]
    touched = {node.class_name for node in quantified}
    if touched & hidden_classes:
        conformed.dropped_constraints.append(  # type: ignore[attr-defined]
            (
                constraint.qualified_name,
                f"quantifies over hidden classes {sorted(touched & hidden_classes)}",
            )
        )
        return
    bindings = {node.var: node.class_name for node in quantified}

    def rewrite(path: Path) -> Path:
        if path.parts[0] in bindings:
            owner = bindings[path.parts[0]]
            renames = conformed.rename_map(owner)
            renamed = tuple(
                renames.get(part, part) if index == 1 else part
                for index, part in enumerate(path.parts)
            )
            return Path(renamed)
        return path

    formula = map_paths(constraint.formula, rewrite)
    result = constraint.with_formula(formula)
    conformed.schema.add_database_constraint(result)
    conformed.conformed_constraints[constraint.qualified_name] = result  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# attachment
# ---------------------------------------------------------------------------


def _attach(
    conformed: ConformedDatabase,
    owner: str,
    original: Constraint,
    result: Constraint,
) -> None:
    class_def = conformed.schema.class_named(owner)
    label = result.name
    taken = {c.name for c in class_def.constraints}
    if label in taken:
        base = label
        suffix = 2
        while label in taken:
            label = f"{base}_{suffix}"
            suffix += 1
        result = result.renamed(label)
    class_def.add_constraint(result)
    # add_constraint re-stamps the owner; fetch the stored instance.
    stored = class_def.constraints[-1]
    conformed.conformed_constraints[original.qualified_name] = stored  # type: ignore[attr-defined]
