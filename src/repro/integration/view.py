"""The integrated (global) view of the two component databases.

Holds the merged global objects, class extents keyed by *qualified* class
names (``CSLibrary.RefereedPubl``, ``Bookseller.Proceedings``), virtual
classes arising from approximate similarity or partial extent overlaps, and
— once the workbench has run — the set of integrated constraints.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any, TYPE_CHECKING

from repro.constraints.ast import Node
from repro.constraints.evaluate import EvalContext, evaluate
from repro.constraints.parser import parse_expression
from repro.errors import EvaluationError, IntegrationError
from repro.integration.conformation import ConformationResult
from repro.integration.spec import IntegrationSpecification

if TYPE_CHECKING:  # pragma: no cover
    from repro.integration.merging import GlobalObject


class IntegratedView:
    """See module docstring."""

    def __init__(
        self, spec: IntegrationSpecification, conformation: ConformationResult
    ):
        self.spec = spec
        self.conformation = conformation
        self._objects: dict[str, "GlobalObject"] = {}
        self._extents: dict[str, set[str]] = {}
        #: virtual class name → global oids explicitly placed there.
        self._virtual_extents: dict[str, set[str]] = {}
        #: virtual class name → qualified superclass names (approx. Sim Cv).
        self.virtual_superclasses: dict[str, set[str]] = {}

    # -- population (used by merging) ----------------------------------------

    def add_object(self, obj: "GlobalObject") -> None:
        if obj.oid in self._objects:
            raise IntegrationError(f"duplicate global object {obj.oid}")
        self._objects[obj.oid] = obj

    def add_virtual_extent_member(self, virtual_class: str, oid: str) -> None:
        self._virtual_extents.setdefault(virtual_class, set()).add(oid)

    def register_virtual_superclass(self, virtual_class: str, parent: str) -> None:
        self.virtual_superclasses.setdefault(virtual_class, set()).add(parent)

    def rebuild_extents(self) -> None:
        self._extents = {}
        for obj in self._objects.values():
            for class_name in obj.classes:
                self._extents.setdefault(class_name, set()).add(obj.oid)
        for virtual_class, members in self._virtual_extents.items():
            extent = self._extents.setdefault(virtual_class, set())
            extent.update(members)
            # The approximate-similarity Cv also contains the target class.
            for parent in self.virtual_superclasses.get(virtual_class, ()):
                extent.update(self._extents.get(parent, ()))

    # -- access ---------------------------------------------------------------------

    def objects(self) -> Iterable["GlobalObject"]:
        return self._objects.values()

    def get(self, oid: str) -> "GlobalObject":
        if oid not in self._objects:
            raise IntegrationError(f"no global object {oid!r}")
        return self._objects[oid]

    def classes(self) -> list[str]:
        return sorted(self._extents)

    def extent(self, class_name: str) -> list["GlobalObject"]:
        """The global extent of a (qualified or virtual) class name."""
        if class_name not in self._extents:
            raise IntegrationError(f"no global class {class_name!r}")
        return [self._objects[oid] for oid in sorted(self._extents[class_name])]

    def extent_oids(self, class_name: str) -> frozenset[str]:
        return frozenset(self._extents.get(class_name, frozenset()))

    def has_class(self, class_name: str) -> bool:
        return class_name in self._extents

    def merged_objects(self) -> list["GlobalObject"]:
        """Objects with components from both databases (Eq merges)."""
        return [
            obj
            for obj in self._objects.values()
            if len(obj.components) == 2
        ]

    # -- evaluation -------------------------------------------------------------------

    def get_attr(self, obj: Any, name: str) -> Any:
        from repro.integration.merging import GlobalObject

        if isinstance(obj, GlobalObject):
            if name not in obj.state:
                raise EvaluationError(
                    f"global object {obj.oid} has no property {name!r}"
                )
            value = obj.state[name]
            if isinstance(value, str) and value in self._objects:
                return self._objects[value]
            return value
        if isinstance(obj, dict):
            return obj[name]
        raise EvaluationError(f"cannot read {name!r} from {obj!r}")

    def eval_context(self, current: Any = None, self_extent_class: str | None = None) -> EvalContext:
        constants: dict[str, Any] = {}
        constants.update(self.conformation.remote.schema.constants)
        constants.update(self.conformation.local.schema.constants)
        extents = {
            name: [self._objects[oid] for oid in oids]
            for name, oids in self._extents.items()
        }
        return EvalContext(
            current=current,
            extents=extents,
            self_extent=(
                self.extent(self_extent_class) if self_extent_class else ()
            ),
            constants=constants,
            get_attr=self.get_attr,
        )

    def select(
        self, class_name: str, predicate: "str | Node | Callable | None" = None
    ) -> list["GlobalObject"]:
        """Objects of a global class satisfying a predicate (cf. queries
        against the integrated view, one of the paper's motivations)."""
        extent = self.extent(class_name)
        if predicate is None:
            return extent
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        if isinstance(predicate, Node):
            formula = predicate
            selected = []
            for obj in extent:
                try:
                    if evaluate(formula, self.eval_context(current=obj)):
                        selected.append(obj)
                except EvaluationError:
                    continue  # partial global states: treat as non-match
            return selected
        return [obj for obj in extent if predicate(obj)]

    def satisfies(self, obj: "GlobalObject", formula: Node) -> bool | None:
        """Evaluate a constraint on a global object; ``None`` if the object's
        state lacks the needed properties."""
        try:
            return bool(evaluate(formula, self.eval_context(current=obj)))
        except EvaluationError:
            return None
