"""AST rewriting utilities shared by conformation and rule repair."""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
)
from repro.errors import ConformationError
from repro.integration.conversion import ConversionFunction


def map_paths(node: Node, fn: Callable[[Path], Path]) -> Node:
    """Structurally rebuild ``node`` with every :class:`Path` passed through
    ``fn``."""
    if isinstance(node, Path):
        return fn(node)
    if isinstance(node, Comparison):
        return Comparison(node.op, map_paths(node.left, fn), map_paths(node.right, fn))
    if isinstance(node, Membership):
        return Membership(
            map_paths(node.element, fn), map_paths(node.collection, fn)
        )
    if isinstance(node, BinaryOp):
        return BinaryOp(node.op, map_paths(node.left, fn), map_paths(node.right, fn))
    if isinstance(node, FunctionCall):
        return FunctionCall(node.name, tuple(map_paths(arg, fn) for arg in node.args))
    if isinstance(node, Not):
        return Not(map_paths(node.operand, fn))
    if isinstance(node, And):
        return And(tuple(map_paths(part, fn) for part in node.parts))
    if isinstance(node, Or):
        return Or(tuple(map_paths(part, fn) for part in node.parts))
    if isinstance(node, Implies):
        return Implies(map_paths(node.antecedent, fn), map_paths(node.consequent, fn))
    if isinstance(node, Quantified):
        return Quantified(node.kind, node.var, node.class_name, map_paths(node.body, fn))
    return node


def rename_attributes(node: Node, renames: Mapping[str, str]) -> Node:
    """Substitute conformed attribute names (Section 4, subtask 2).

    ``renames`` maps *first path segments* (attribute names of the class the
    constraint is allocated to) to their conformed names.  Key-constraint
    attribute lists are renamed too; aggregate ``over`` attributes likewise.
    """

    def rename(path: Path) -> Path:
        first = path.parts[0]
        if first in renames:
            return Path((renames[first],) + path.parts[1:])
        return path

    rebuilt = map_paths(node, rename)
    return _rename_special(rebuilt, renames)


def _rename_special(node: Node, renames: Mapping[str, str]) -> Node:
    if isinstance(node, KeyConstraint):
        return KeyConstraint(
            tuple(renames.get(attr, attr) for attr in node.attributes)
        )
    if isinstance(node, Aggregate):
        over = renames.get(node.over, node.over) if node.over else node.over
        return Aggregate(node.func, node.item_var, node.collection, over)
    if isinstance(node, Comparison):
        return Comparison(
            node.op,
            _rename_special(node.left, renames),
            _rename_special(node.right, renames),
        )
    if isinstance(node, Membership):
        return Membership(
            _rename_special(node.element, renames),
            _rename_special(node.collection, renames),
        )
    if isinstance(node, Not):
        return Not(_rename_special(node.operand, renames))
    if isinstance(node, And):
        return And(tuple(_rename_special(p, renames) for p in node.parts))
    if isinstance(node, Or):
        return Or(tuple(_rename_special(p, renames) for p in node.parts))
    if isinstance(node, Implies):
        return Implies(
            _rename_special(node.antecedent, renames),
            _rename_special(node.consequent, renames),
        )
    if isinstance(node, Quantified):
        return Quantified(
            node.kind, node.var, node.class_name, _rename_special(node.body, renames)
        )
    return node


def convert_domains(node: Node, conversions: Mapping[str, ConversionFunction]) -> Node:
    """Domain conversion of constraint constants (Section 4, subtask 3).

    For every comparison/membership whose path's *first segment* is a
    converted property, the constant side is pushed through the conversion
    function: under ``multiply(2)`` on ``rating``, ``rating >= 2`` becomes
    ``rating >= 4`` and ``rating in {1, 2}`` becomes ``rating in {2, 4}``.
    """
    if isinstance(node, Comparison):
        return _convert_comparison(node, conversions)
    if isinstance(node, Membership):
        return _convert_membership(node, conversions)
    if isinstance(node, Not):
        return Not(convert_domains(node.operand, conversions))
    if isinstance(node, And):
        return And(tuple(convert_domains(p, conversions) for p in node.parts))
    if isinstance(node, Or):
        return Or(tuple(convert_domains(p, conversions) for p in node.parts))
    if isinstance(node, Implies):
        return Implies(
            convert_domains(node.antecedent, conversions),
            convert_domains(node.consequent, conversions),
        )
    if isinstance(node, Quantified):
        return Quantified(
            node.kind,
            node.var,
            node.class_name,
            convert_domains(node.body, conversions),
        )
    return node


def _conversion_for(node: Node, conversions: Mapping[str, ConversionFunction]):
    if isinstance(node, Path) and node.parts[0] in conversions:
        cf = conversions[node.parts[0]]
        if len(node.parts) > 1:
            raise ConformationError(
                f"cannot convert dotted path {node.dotted()!r}: conversion "
                f"functions apply to scalar properties"
            )
        return cf
    return None


def _convert_comparison(
    node: Comparison, conversions: Mapping[str, ConversionFunction]
) -> Node:
    left_cf = _conversion_for(node.left, conversions)
    right_cf = _conversion_for(node.right, conversions)
    if left_cf is None and right_cf is None:
        return node
    if left_cf is not None and right_cf is not None:
        if left_cf.name == right_cf.name:
            # Same conversion both sides of an order comparison: for the
            # linear/mapping conversions here, the relation is preserved
            # (or flipped for decreasing linear maps).
            if left_cf.order_preserving is False and node.op not in ("=", "!="):
                return node.mirrored()
            return node
        raise ConformationError(
            "comparison relates two differently-converted properties"
        )
    if left_cf is not None and isinstance(node.right, Literal):
        value, op = left_cf.convert_constant(node.right.value, node.op)
        return Comparison(op, node.left, Literal(value))
    if right_cf is not None and isinstance(node.left, Literal):
        mirrored = node.mirrored()  # put the path on the left
        value, op = right_cf.convert_constant(mirrored.right.value, mirrored.op)  # type: ignore[union-attr]
        return Comparison(op, mirrored.left, Literal(value))
    raise ConformationError(
        f"cannot convert comparison {node!r}: non-constant operand"
    )


def _convert_membership(
    node: Membership, conversions: Mapping[str, ConversionFunction]
) -> Node:
    cf = _conversion_for(node.element, conversions)
    if cf is None:
        return node
    if isinstance(node.collection, SetLiteral):
        converted = tuple(cf.apply(v) for v in node.collection.values)
        return Membership(node.element, SetLiteral(converted))
    raise ConformationError(
        f"cannot convert membership of {node.element!r} in a named constant: "
        "bind the constant to an explicit set first"
    )
