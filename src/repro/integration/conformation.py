"""The conformation phase (Sections 2.3 and 4).

Conformation brings the local and remote databases "into a common semantical
context, so that they can be merged":

1. **Object-value conflicts** (descriptivity rules) are settled.  Under the
   *object view* — the one taken in the paper's example — values become
   virtual objects: the string-valued ``Publication.publisher`` is replaced
   by a reference to a new virtual class ``VirtPublisher`` whose ``name``
   attribute carries the old values, and one virtual object is created per
   distinct value.  Under the *value view* the remote objects are hidden:
   they are cast into the describing attribute's value, and any of their
   properties not included in the value are *hidden* along with the
   constraints that involve them.

2. **Property conformation**: equivalent properties receive identical
   conformed names (``ourprice`` → ``libprice``) and identical domains (the
   library's 1..5 ratings pass through ``multiply(2)``), on schemas and
   instance states alike.

Constraint conformation (Section 4) builds on the maps computed here and
lives in :mod:`repro.integration.constraint_conformation`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.constraints.model import Constraint
from repro.engine.store import ObjectStore
from repro.errors import ConformationError
from repro.integration.conversion import ConversionFunction
from repro.integration.decision import DecisionFunction
from repro.integration.propeq import PropertyEquivalence
from repro.integration.relationships import Side
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification
from repro.tm.schema import Attribute, ClassDef, DatabaseSchema
from repro.types.primitives import ClassRef, Type


@dataclass(frozen=True)
class Relocation:
    """A value attribute relocated onto a virtual class (object view)."""

    side: Side
    class_name: str  # the class whose attribute held the value
    value_attribute: str  # e.g. 'publisher'
    virtual_class: str  # e.g. 'VirtPublisher'
    object_attribute: str  # e.g. 'name'


@dataclass(frozen=True)
class Hiding:
    """A remote class cast into values (value view); its other properties
    and their constraints are hidden."""

    side: Side  # the side whose objects were hidden
    hidden_class: str  # e.g. 'Publisher'
    casting_class: str  # the class keeping the value, e.g. 'Item'
    value_attribute: str  # e.g. 'publisher'
    object_attribute: str  # the attribute whose value survives, e.g. 'name'


@dataclass
class ConformedObject:
    """An instance brought into the common semantic context."""

    oid: str  # conformed identifier, e.g. 'local:Publication#1'
    class_name: str
    state: dict[str, Any]
    side: Side
    source_oid: str | None  # original store oid; None for virtual objects
    virtual: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.class_name} {self.oid} {self.state!r}>"


@dataclass
class ConformedPropeq:
    """A property equivalence re-expressed in conformed terms.

    After conformation both sides use the same ``name``; the classes may be
    virtual (the publisher equivalence moves to ``VirtPublisher.name``).
    """

    local_class: str
    remote_class: str
    name: str
    df: DecisionFunction
    original: PropertyEquivalence


@dataclass
class ConformedDatabase:
    """One side's conformed schema, maps and instances."""

    side: Side
    original_schema: DatabaseSchema
    schema: DatabaseSchema
    #: declaring class → {original attribute → conformed name}
    renames: dict[str, dict[str, str]] = field(default_factory=dict)
    #: declaring class → {original attribute → conversion function}
    conversions: dict[str, dict[str, ConversionFunction]] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)
    hidings: list[Hiding] = field(default_factory=list)
    instances: list[ConformedObject] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: original qualified constraint name → conformed constraint.
    conformed_constraints: dict[str, "Constraint"] = field(default_factory=dict)
    #: (original qualified name, reason) for constraints conformation dropped.
    dropped_constraints: list[tuple[str, str]] = field(default_factory=list)

    # -- resolved per-class maps (own + inherited declarations) ----------------

    def rename_map(self, class_name: str) -> dict[str, str]:
        merged: dict[str, str] = {}
        if not self.original_schema.has_class(class_name):
            return merged
        for ancestor in self.original_schema.ancestors(class_name):
            for old, new in self.renames.get(ancestor.name, {}).items():
                merged.setdefault(old, new)
        return merged

    def conversion_map(self, class_name: str) -> dict[str, ConversionFunction]:
        merged: dict[str, ConversionFunction] = {}
        if not self.original_schema.has_class(class_name):
            return merged
        for ancestor in self.original_schema.ancestors(class_name):
            for attr, cf in self.conversions.get(ancestor.name, {}).items():
                merged.setdefault(attr, cf)
        return merged

    def conformed_attribute_name(self, class_name: str, attribute: str) -> str:
        return self.rename_map(class_name).get(attribute, attribute)

    def instances_of(self, class_name: str, deep: bool = True) -> list[ConformedObject]:
        names = {class_name}
        if deep and self.schema.has_class(class_name):
            names.update(self.schema.subclasses_of(class_name))
        return [obj for obj in self.instances if obj.class_name in names]


@dataclass
class ConformationResult:
    """Everything the merging phase consumes."""

    local: ConformedDatabase
    remote: ConformedDatabase
    propeqs: list[ConformedPropeq] = field(default_factory=list)
    issues: list[str] = field(default_factory=list)

    def on(self, side: Side) -> ConformedDatabase:
        return self.local if side is Side.LOCAL else self.remote


def conform(
    spec: IntegrationSpecification,
    local_store: ObjectStore | None = None,
    remote_store: ObjectStore | None = None,
    descriptivity_view: str = "object",
) -> ConformationResult:
    """Run the conformation phase.

    ``descriptivity_view`` chooses how object-value conflicts are settled:
    ``"object"`` (the paper's choice — values become virtual objects) or
    ``"value"`` (objects are hidden into values).
    """
    if descriptivity_view not in ("object", "value"):
        raise ConformationError(
            f"unknown descriptivity view {descriptivity_view!r}"
        )
    local = ConformedDatabase(
        Side.LOCAL, spec.local_schema, _clone_schema(spec.local_schema)
    )
    remote = ConformedDatabase(
        Side.REMOTE, spec.remote_schema, _clone_schema(spec.remote_schema)
    )
    result = ConformationResult(local, remote)

    for rule in spec.descriptivity_rules():
        if descriptivity_view == "object":
            _virtualise_values(result.on(rule.source_side.other), rule)
        else:
            _hide_objects(result.on(rule.source_side), result, rule)

    _conform_properties(spec, result)

    if local_store is not None:
        _conform_instances(local, local_store)
    if remote_store is not None:
        _conform_instances(remote, remote_store)

    from repro.integration.constraint_conformation import conform_constraints

    for conformed in (local, remote):
        conform_constraints(conformed)
    return result


# ---------------------------------------------------------------------------
# schema cloning
# ---------------------------------------------------------------------------


def _clone_schema(schema: DatabaseSchema) -> DatabaseSchema:
    clone = DatabaseSchema(schema.name)
    for class_def in schema.classes.values():
        copy = ClassDef(class_def.name, class_def.parent, virtual=class_def.virtual)
        for attribute in class_def.attributes.values():
            copy.add_attribute(attribute.name, attribute.tm_type)
        clone.add_class(copy)
    clone.constants.update(schema.constants)
    # Constraints are attached by constraint conformation, not copied.
    return clone


# ---------------------------------------------------------------------------
# descriptivity: object view
# ---------------------------------------------------------------------------


def _virtualise_values(conformed: ConformedDatabase, rule: ComparisonRule) -> None:
    """Replace a value attribute by references to a new virtual class."""
    schema = conformed.schema
    class_name = rule.target_class
    attribute = rule.value_attribute
    object_attribute = rule.object_attribute
    assert class_name and attribute and object_attribute
    declaring = _declaring_class(schema, class_name, attribute)
    value_type = schema.attribute_type(declaring, attribute)
    virtual_name = f"Virt{rule.source_class}"
    if not schema.has_class(virtual_name):
        virtual = schema.new_class(virtual_name, virtual=True)
        virtual.add_attribute(object_attribute, value_type)
    schema.class_named(declaring).attributes[attribute] = Attribute(
        attribute, ClassRef(virtual_name)
    )
    conformed.relocations.append(
        Relocation(conformed.side, declaring, attribute, virtual_name, object_attribute)
    )
    conformed.notes.append(
        f"values of {declaring}.{attribute} virtualised into {virtual_name} "
        f"objects (attribute {object_attribute})"
    )


# ---------------------------------------------------------------------------
# descriptivity: value view
# ---------------------------------------------------------------------------


def _hide_objects(
    conformed: ConformedDatabase, result: ConformationResult, rule: ComparisonRule
) -> None:
    """Cast the source-side objects into values of the describing attribute."""
    schema = conformed.schema
    hidden_class = rule.source_class
    object_attribute = rule.object_attribute
    assert hidden_class and object_attribute
    hidden_def = schema.class_named(hidden_class)
    surviving_type = schema.attribute_type(hidden_class, object_attribute)
    # Re-type every reference to the hidden class as the surviving value type.
    casting_classes: list[tuple[str, str]] = []
    for class_def in schema.classes.values():
        for attribute in list(class_def.attributes.values()):
            if (
                isinstance(attribute.tm_type, ClassRef)
                and attribute.tm_type.class_name == hidden_class
            ):
                class_def.attributes[attribute.name] = Attribute(
                    attribute.name, surviving_type
                )
                casting_classes.append((class_def.name, attribute.name))
    del schema.classes[hidden_class]
    for casting_class, value_attribute in casting_classes:
        conformed.hidings.append(
            Hiding(
                conformed.side,
                hidden_class,
                casting_class,
                value_attribute,
                object_attribute,
            )
        )
    hidden_attrs = [
        a for a in hidden_def.attributes if a != object_attribute
    ]
    if hidden_attrs:
        conformed.notes.append(
            f"hiding {hidden_class} dropped properties {sorted(hidden_attrs)} "
            "and any constraints involving them"
        )


# ---------------------------------------------------------------------------
# property conformation
# ---------------------------------------------------------------------------


def _conform_properties(
    spec: IntegrationSpecification, result: ConformationResult
) -> None:
    for propeq in spec.propeqs:
        conformed_sides: dict[Side, tuple[str, str]] = {}
        for side in (Side.LOCAL, Side.REMOTE):
            conformed = result.on(side)
            class_name = propeq.class_on(side)
            prop = propeq.property_on(side)
            relocation = _relocation_for(conformed, class_name, prop)
            if relocation is not None:
                # The equivalence now lives on the virtual class.
                conformed_sides[side] = (
                    relocation.virtual_class,
                    relocation.object_attribute,
                )
                continue
            hiding = _hiding_for(conformed, class_name, prop)
            if hiding is not None:
                conformed_sides[side] = (hiding.casting_class, hiding.value_attribute)
                continue
            if not conformed.original_schema.has_class(class_name):
                result.issues.append(
                    f"{propeq.describe_short()}: unknown class {class_name}"
                )
                continue
            declaring = _declaring_class(
                conformed.original_schema, class_name, prop
            )
            assert propeq.conformed_name is not None
            renames = conformed.renames.setdefault(declaring, {})
            if prop != propeq.conformed_name:
                renames[prop] = propeq.conformed_name
            cf = propeq.cf_on(side)
            if not cf.is_identity:
                conformed.conversions.setdefault(declaring, {})[prop] = cf
            _apply_to_schema(conformed.schema, declaring, prop, propeq.conformed_name, cf)
            conformed_sides[side] = (declaring, propeq.conformed_name)
        if len(conformed_sides) == 2:
            local_class, local_name = conformed_sides[Side.LOCAL]
            remote_class, remote_name = conformed_sides[Side.REMOTE]
            if local_name != remote_name:
                result.issues.append(
                    f"{propeq.describe_short()}: conformed names diverge "
                    f"({local_name!r} vs {remote_name!r}); using {local_name!r}"
                )
            result.propeqs.append(
                ConformedPropeq(
                    local_class, remote_class, local_name, propeq.df, propeq
                )
            )


def _apply_to_schema(
    schema: DatabaseSchema,
    declaring: str,
    prop: str,
    conformed_name: str,
    cf: ConversionFunction,
) -> None:
    class_def = schema.class_named(declaring)
    if prop not in class_def.attributes:
        raise ConformationError(
            f"{declaring} does not declare attribute {prop!r}"
        )
    tm_type = class_def.attributes[prop].tm_type
    conformed_type: Type = cf.convert_type(tm_type) if not cf.is_identity else tm_type
    del class_def.attributes[prop]
    class_def.attributes[conformed_name] = Attribute(conformed_name, conformed_type)


def _declaring_class(schema: DatabaseSchema, class_name: str, attribute: str) -> str:
    for ancestor in schema.ancestors(class_name):
        if attribute in ancestor.attributes:
            return ancestor.name
    raise ConformationError(
        f"class {class_name} has no attribute {attribute!r}"
    )


def _relocation_for(
    conformed: ConformedDatabase, class_name: str, prop: str
) -> Relocation | None:
    for relocation in conformed.relocations:
        if relocation.value_attribute != prop:
            continue
        schema = conformed.original_schema
        if schema.has_class(class_name) and schema.is_subclass_of(
            class_name, relocation.class_name
        ):
            return relocation
    return None


def _hiding_for(
    conformed: ConformedDatabase, class_name: str, prop: str
) -> Hiding | None:
    for hiding in conformed.hidings:
        if hiding.hidden_class == class_name and hiding.object_attribute == prop:
            return hiding
    return None


# ---------------------------------------------------------------------------
# instance conformation
# ---------------------------------------------------------------------------


def _conform_instances(conformed: ConformedDatabase, store: ObjectStore) -> None:
    side = conformed.side
    prefix = side.value
    virtual_counters: dict[str, itertools.count] = {}
    virtual_cache: dict[tuple[str, Any], str] = {}

    hidden_classes = {h.hidden_class for h in conformed.hidings}
    relocations_by_class: dict[str, list[Relocation]] = {}
    for relocation in conformed.relocations:
        relocations_by_class.setdefault(relocation.class_name, []).append(relocation)

    for obj in store.objects():
        if obj.class_name in hidden_classes:
            continue  # cast into values; handled below per referencing object
        renames = conformed.rename_map(obj.class_name)
        conversions = conformed.conversion_map(obj.class_name)
        state: dict[str, Any] = {}
        for attr, value in obj.state.items():
            new_name = renames.get(attr, attr)
            relocation = _relocation_for(conformed, obj.class_name, attr)
            if relocation is not None:
                key = (relocation.virtual_class, value)
                if key not in virtual_cache:
                    counter = virtual_counters.setdefault(
                        relocation.virtual_class, itertools.count(1)
                    )
                    virtual_oid = (
                        f"{prefix}:{relocation.virtual_class}#{next(counter)}"
                    )
                    conformed.instances.append(
                        ConformedObject(
                            virtual_oid,
                            relocation.virtual_class,
                            {relocation.object_attribute: value},
                            side,
                            source_oid=None,
                            virtual=True,
                        )
                    )
                    virtual_cache[key] = virtual_oid
                state[new_name] = virtual_cache[key]
                continue
            hiding = _value_hiding_for(conformed, obj.class_name, attr)
            if hiding is not None:
                target = store.get(value)
                state[new_name] = target.state[hiding.object_attribute]
                continue
            tm_type = _original_type(conformed, obj.class_name, attr)
            if isinstance(tm_type, ClassRef) and isinstance(value, str):
                state[new_name] = f"{prefix}:{value}"
            elif attr in conversions:
                state[new_name] = conversions[attr].apply(value)
            else:
                state[new_name] = value
        conformed.instances.append(
            ConformedObject(
                f"{prefix}:{obj.oid}", obj.class_name, state, side, obj.oid
            )
        )


def _value_hiding_for(
    conformed: ConformedDatabase, class_name: str, attr: str
) -> Hiding | None:
    for hiding in conformed.hidings:
        if hiding.casting_class == class_name and hiding.value_attribute == attr:
            return hiding
        schema = conformed.original_schema
        if (
            hiding.value_attribute == attr
            and schema.has_class(class_name)
            and schema.has_class(hiding.casting_class)
            and schema.is_subclass_of(class_name, hiding.casting_class)
        ):
            return hiding
    return None


def _original_type(
    conformed: ConformedDatabase, class_name: str, attr: str
) -> Type | None:
    try:
        return conformed.original_schema.attribute_type(class_name, attr)
    except Exception:
        return None
