"""Textual rendering of an :class:`IntegrationResult` — the design-tool
output the paper's conclusion envisions ("constraint conflicts detected can
be used to highlight errors in the specification, and suggestions can be done
to the user as to how to correct them")."""

from __future__ import annotations

from repro.constraints.printer import to_source
from repro.integration.relationships import Side
from repro.integration.workbench import IntegrationResult


def render_report(result: IntegrationResult, width: int = 78) -> str:
    """A complete multi-section plain-text report."""
    lines: list[str] = []
    rule = "=" * width

    def section(title: str) -> None:
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    lines.append(rule)
    lines.append("DATABASE INTEROPERATION REPORT".center(width))
    local = result.spec.local_schema.name
    remote = result.spec.remote_schema.name
    lines.append(f"{local} (local) ⋈ {remote} (remote)".center(width))
    lines.append(rule)

    if result.spec_issues:
        section("Specification issues")
        for issue in result.spec_issues:
            lines.append(f"  ! {issue.describe()}")

    if result.component_violations:
        section("Component store violations")
        lines.append(
            "  the paper assumes components enforce their own constraints;"
        )
        lines.append("  these stores do not, so derived results are unreliable:")
        for component, violations in result.component_violations.items():
            for violation in violations:
                lines.append(f"  ! {component}: {violation}")
        for component, cores in result.component_cores.items():
            for core in cores:
                lines.append(f"  conflict core [{component}]:")
                for core_line in core.describe().splitlines():
                    lines.append(f"    {core_line}")

    if result.static_warnings:
        section("Static analysis")
        lines.append(
            "  constraint-level findings needing no data at all — a"
        )
        lines.append(
            "  contradiction here means the merged schema is inconsistent"
        )
        lines.append("  before any instance exists:")
        for diagnostic in result.static_warnings:
            marker = "!" if diagnostic.severity == "error" else "*"
            lines.append(f"  {marker} {diagnostic.render()}")

    if result.subjectivity is not None:
        section("Constraint subjectivity (Section 5.1)")
        for name, status in sorted(result.subjectivity.constraint_status.items()):
            tag = "subjective" if status.subjective else "objective "
            lines.append(f"  [{tag}] {name} — {status.reason}")
        for violation in result.subjectivity.violations:
            lines.append(f"  ! consistency violation: {violation}")

    if result.conformation is not None:
        section("Conformation (Section 4)")
        for side in (Side.LOCAL, Side.REMOTE):
            conformed = result.conformation.on(side)
            for note in conformed.notes:
                lines.append(f"  [{side.value}] {note}")
            for name, reason in conformed.dropped_constraints:
                lines.append(f"  [{side.value}] dropped {name}: {reason}")

    if result.rule_checks is not None:
        section("Rule checks (Section 3)")
        for analysis in result.rule_checks.analyses:
            for constraint in analysis.derived:
                lines.append(
                    f"  derived on {analysis.class_name} "
                    f"({analysis.rule.name}): {to_source(constraint.formula)}"
                )
        for conflict in result.rule_checks.conflicts:
            lines.append(f"  ! {conflict.describe()}")

    if result.view is not None:
        section("Integrated view (Section 2.3)")
        merged = result.view.merged_objects()
        total = len(list(result.view.objects()))
        lines.append(f"  {total} global objects ({len(merged)} merged)")
        if result.hierarchy is not None:
            for child, parent in sorted(result.hierarchy.derived_edges):
                lines.append(f"  derived: {child} isa {parent}")
            for name, (a, b) in sorted(result.hierarchy.virtual_classes.items()):
                lines.append(f"  virtual class {name} = {a} ∩ {b}")

    if result.derivation is not None:
        section("Integrated constraints (Section 5.2)")
        for constraint in result.derivation.constraints:
            lines.append(f"  {constraint.describe()}")
        if result.derivation.notes:
            lines.append("  notes:")
            for note in result.derivation.notes:
                lines.append(f"    - {note}")

    if result.class_constraints is not None:
        section("Class constraints (Section 5.2.2)")
        for side, names in result.class_constraints.objective_extension.items():
            if names:
                lines.append(
                    f"  objective extension ({side.value}): "
                    + ", ".join(sorted(names))
                )
        for constraint in result.class_constraints.propagated:
            lines.append(f"  {constraint.describe()}")
        for name, reason in result.class_constraints.retained_locally:
            lines.append(f"  local-only {name}: {reason}")
        for name, reason in result.class_constraints.needs_global_enforcement:
            lines.append(f"  ! {name}: {reason}")

    if result.database_constraints is not None:
        section("Database constraints (Section 5.2.3)")
        for name, reason in result.database_constraints.retained_locally:
            lines.append(f"  local-only {name}: {reason}")

    conflicts_present = (
        result.derivation is not None
        and (
            result.derivation.explicit_conflicts
            or result.derivation.implicit_risks
            or result.derivation.similarity_conflicts
        )
    ) or result.state_violations
    if conflicts_present:
        section("Conflicts")
        assert result.derivation is not None
        for conflict in result.derivation.explicit_conflicts:
            lines.append(f"  ! {conflict.describe()}")
        for risk in result.derivation.implicit_risks:
            lines.append(f"  ! {risk.describe()}")
        for conflict in result.derivation.similarity_conflicts:
            lines.append(f"  ! {conflict.describe()}")
        for violation in result.state_violations:
            lines.append(f"  ! {violation.describe()}")
            if violation.core is not None:
                for core_line in violation.core.describe().splitlines():
                    lines.append(f"      {core_line}")

    if result.suggestions:
        section("Suggestions (Section 5.2.1 resolution options)")
        for suggestion in result.suggestions:
            lines.append(f"  * {suggestion.describe()}")

    section("Verdict")
    if result.is_consistent():
        lines.append("  specification is consistent with the local constraints")
    else:
        lines.append(
            f"  {result.conflict_count()} conflict(s) found — "
            "see suggestions above"
        )
    lines.append("")
    return "\n".join(lines)
