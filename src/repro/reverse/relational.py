"""A minimal relational schema model (the input of reverse engineering)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

#: SQL type name → TM type name used by the translator.
SQL_TYPE_MAP = {
    "int": "int",
    "integer": "int",
    "smallint": "int",
    "bigint": "int",
    "real": "real",
    "float": "real",
    "double": "real",
    "decimal": "real",
    "numeric": "real",
    "varchar": "string",
    "char": "string",
    "text": "string",
    "boolean": "bool",
    "bool": "bool",
}


@dataclass(frozen=True)
class Column:
    """A table column.

    ``sql_type`` is the lowercase SQL base type (length arguments dropped);
    ``check`` is an optional per-column CHECK body in SQL syntax.
    """

    name: str
    sql_type: str
    nullable: bool = False
    unique: bool = False
    check: str | None = None

    def __post_init__(self) -> None:
        base = self.sql_type.split("(")[0].strip().lower()
        if base not in SQL_TYPE_MAP:
            raise SchemaError(f"unsupported SQL type {self.sql_type!r}")
        object.__setattr__(self, "sql_type", base)


@dataclass(frozen=True)
class ForeignKey:
    """``FOREIGN KEY (column) REFERENCES table(column)``."""

    column: str
    references_table: str
    references_column: str


@dataclass
class Table:
    """A relational table."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    #: Table-level CHECK bodies in SQL syntax.
    checks: list[str] = field(default_factory=list)

    def column_named(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)


@dataclass
class RelationalSchema:
    """A named collection of tables."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._validate(table)
        self.tables[table.name] = table
        return table

    def _validate(self, table: Table) -> None:
        names = [column.name for column in table.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {table.name} has duplicate columns")
        for key in table.primary_key:
            if not table.has_column(key):
                raise SchemaError(
                    f"table {table.name}: primary key column {key!r} missing"
                )
        for fk in table.foreign_keys:
            if not table.has_column(fk.column):
                raise SchemaError(
                    f"table {table.name}: foreign key column {fk.column!r} missing"
                )

    def table_named(self, name: str) -> Table:
        if name not in self.tables:
            raise SchemaError(f"unknown table {name!r}")
        return self.tables[name]
