"""Reverse engineering of relational schemas into TM specifications.

The paper assumes "semantically rich specifications such as those expressible
in TM are not always available for existing databases.  Typically, such
specifications are obtained through reverse engineering, as discussed in
[VeA95]" — this package is that substrate.  It models a relational schema
(tables, columns, primary/foreign keys, NOT NULL / UNIQUE / CHECK
constraints), parses the SQL fragment used in CHECK bodies, and translates
the whole into a TM :class:`~repro.tm.schema.DatabaseSchema`:

* a table becomes a class; a foreign-key column becomes a reference
  attribute (and the FK itself a referential database constraint);
* ``CHECK`` constraints become object constraints in the constraint
  language;
* primary keys and ``UNIQUE`` columns become ``key`` class constraints;
* enumerated ``CHECK (c IN (...))`` columns tighten the attribute type.
"""

from repro.reverse.relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
)
from repro.reverse.translate import translate_schema

__all__ = [
    "Column",
    "ForeignKey",
    "Table",
    "RelationalSchema",
    "translate_schema",
]
