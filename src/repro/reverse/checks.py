"""Translation of SQL CHECK bodies into the constraint language.

Covers the SQL fragment that appears in practice for single-table checks:
comparisons (including ``<>``), ``IN (...)`` lists, ``BETWEEN``, boolean
connectives ``AND`` / ``OR`` / ``NOT``, literals.  The output is source text
for :func:`repro.constraints.parser.parse_expression`.
"""

from __future__ import annotations

import re

from repro.constraints.ast import Node
from repro.constraints.parser import parse_expression
from repro.errors import ParseError

_BETWEEN_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_.]*)\s+BETWEEN\s+(\S+)\s+AND\s+(\S+)",
    re.IGNORECASE,
)
_IN_RE = re.compile(r"\bIN\s*\(([^()]*)\)", re.IGNORECASE)
_KEYWORDS_RE = re.compile(r"\b(AND|OR|NOT|TRUE|FALSE|IMPLIES)\b", re.IGNORECASE)


def sql_check_to_source(sql: str) -> str:
    """Rewrite a SQL CHECK body as constraint-language source text."""
    text = sql.strip().rstrip(";")
    text = _BETWEEN_RE.sub(r"(\1 >= \2 and \1 <= \3)", text)
    text = _IN_RE.sub(lambda m: " in {" + m.group(1) + "}", text)
    text = text.replace("<>", "!=")
    text = _KEYWORDS_RE.sub(lambda m: m.group(1).lower(), text)
    return text


def parse_sql_check(sql: str) -> Node:
    """Parse a SQL CHECK body into a constraint AST."""
    source = sql_check_to_source(sql)
    try:
        return parse_expression(source)
    except ParseError as exc:
        raise ParseError(
            f"cannot translate SQL CHECK {sql!r} (as {source!r}): {exc.message}",
            exc.line,
            exc.column,
        ) from exc
