"""Relational → TM translation (the [VeA95] reverse-engineering step).

Rules applied, in the spirit of classic reverse-engineering methodology:

* a table whose primary key is simultaneously a foreign key to another table
  is a **subclass** of that table (the ``isa`` pattern); the shared columns
  are not repeated;
* any other foreign-key column becomes a **reference attribute** typed by the
  referenced class, plus a referential database constraint in the ``db1``
  style of Figure 1;
* per-column and per-table ``CHECK`` bodies become object constraints;
* the primary key and every ``UNIQUE`` column become ``key`` class
  constraints;
* an enumerated check ``c IN (v1, ..., vn)`` additionally tightens the
  attribute's TM type to the enumeration.
"""

from __future__ import annotations

from repro.constraints.ast import Membership, Path, SetLiteral
from repro.constraints.classify import classify_formula
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.parser import parse_expression
from repro.errors import SchemaError
from repro.reverse.checks import parse_sql_check
from repro.reverse.relational import (
    SQL_TYPE_MAP,
    Column,
    RelationalSchema,
    Table,
)
from repro.tm.schema import ClassDef, DatabaseSchema
from repro.types.primitives import ClassRef, EnumType, parse_type


def translate_schema(relational: RelationalSchema) -> DatabaseSchema:
    """Translate a relational schema into a TM database schema."""
    schema = DatabaseSchema(relational.name)
    subclass_of = _detect_subclasses(relational)
    for table in relational.tables.values():
        schema.add_class(_translate_table(relational, table, subclass_of))
    _add_referential_constraints(relational, schema, subclass_of)
    return schema


def _detect_subclasses(relational: RelationalSchema) -> dict[str, str]:
    """Tables whose PK is also an FK are subclasses of the referenced table."""
    subclass_of: dict[str, str] = {}
    for table in relational.tables.values():
        if not table.primary_key:
            continue
        pk = set(table.primary_key)
        for fk in table.foreign_keys:
            if {fk.column} == pk and fk.references_table in relational.tables:
                parent = relational.table_named(fk.references_table)
                if set(parent.primary_key) == {fk.references_column}:
                    subclass_of[table.name] = fk.references_table
                    break
    return subclass_of


def _translate_table(
    relational: RelationalSchema,
    table: Table,
    subclass_of: dict[str, str],
) -> ClassDef:
    parent = subclass_of.get(table.name)
    class_def = ClassDef(table.name, parent)
    fk_by_column = {fk.column: fk for fk in table.foreign_keys}
    inherited = _inherited_columns(relational, table, subclass_of)

    oc_counter = 1
    for column in table.columns:
        if column.name in inherited:
            continue
        if parent is not None and column.name in table.primary_key:
            continue  # the subclass key column is the parent reference
        fk = fk_by_column.get(column.name)
        if fk is not None and fk.references_table != parent:
            class_def.add_attribute(column.name, ClassRef(fk.references_table))
        else:
            class_def.add_attribute(
                column.name, _column_type(column)
            )
        if column.check:
            formula = parse_sql_check(column.check)
            class_def.add_constraint(
                Constraint(
                    f"oc{oc_counter}",
                    ConstraintKind.OBJECT,
                    formula,
                    database=relational.name,
                )
            )
            oc_counter += 1
    for check in table.checks:
        formula = parse_sql_check(check)
        kind = classify_formula(formula)
        class_def.add_constraint(
            Constraint(
                f"oc{oc_counter}", kind, formula, database=relational.name
            )
        )
        oc_counter += 1

    cc_counter = 1
    if table.primary_key and parent is None:
        key_source = "key " + ", ".join(table.primary_key)
        class_def.add_constraint(
            Constraint(
                f"cc{cc_counter}",
                ConstraintKind.CLASS,
                parse_expression(key_source),
                database=relational.name,
            )
        )
        cc_counter += 1
    for column in table.columns:
        if column.unique and column.name not in table.primary_key:
            class_def.add_constraint(
                Constraint(
                    f"cc{cc_counter}",
                    ConstraintKind.CLASS,
                    parse_expression(f"key {column.name}"),
                    database=relational.name,
                )
            )
            cc_counter += 1
    return class_def


def _inherited_columns(
    relational: RelationalSchema,
    table: Table,
    subclass_of: dict[str, str],
) -> set[str]:
    """Columns a subclass table shares with its (transitive) parents."""
    inherited: set[str] = set()
    parent = subclass_of.get(table.name)
    while parent is not None:
        parent_table = relational.table_named(parent)
        inherited.update(
            column.name
            for column in parent_table.columns
            if table.has_column(column.name)
            and column.name not in table.primary_key
        )
        parent = subclass_of.get(parent)
    return inherited


def _column_type(column: Column):
    base_type = parse_type(SQL_TYPE_MAP[column.sql_type])
    if column.check:
        enum_values = _enumeration_from_check(column)
        if enum_values is not None:
            return EnumType(enum_values)
    return base_type


def _enumeration_from_check(column: Column):
    """``c IN (...)`` checks tighten the column type to the enumeration."""
    assert column.check is not None
    try:
        formula = parse_sql_check(column.check)
    except Exception:
        return None
    if (
        isinstance(formula, Membership)
        and isinstance(formula.element, Path)
        and formula.element.parts == (column.name,)
        and isinstance(formula.collection, SetLiteral)
    ):
        return frozenset(formula.collection.values)
    return None


def _add_referential_constraints(
    relational: RelationalSchema,
    schema: DatabaseSchema,
    subclass_of: dict[str, str],
) -> None:
    counter = 1
    for table in relational.tables.values():
        for fk in table.foreign_keys:
            if subclass_of.get(table.name) == fk.references_table:
                continue  # expressed as isa, not as a reference
            if fk.references_table not in relational.tables:
                raise SchemaError(
                    f"foreign key of {table.name} references unknown table "
                    f"{fk.references_table!r}"
                )
            source = (
                f"forall c in {table.name} exists p in {fk.references_table} "
                f"| c.{fk.column} = p"
            )
            schema.add_database_constraint(
                Constraint(
                    f"db{counter}",
                    ConstraintKind.DATABASE,
                    parse_expression(source),
                    database=relational.name,
                )
            )
            counter += 1
