"""Property-based tests of the paper's core guarantees.

The central soundness property: *every derived global constraint admits
every global state that can actually arise* — whatever values the component
databases hold (within their own constraints) and whatever decision function
combines them.  Hypothesis generates random component extents and decision
functions; the property must hold unconditionally.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import parse_expression
from repro.constraints.evaluate import EvalContext, evaluate
from repro.engine import ObjectStore
from repro.integration import (
    AnyChoice,
    Average,
    ComparisonRule,
    IntegrationSpecification,
    IntegrationWorkbench,
    Maximum,
    Minimum,
    PropertyEquivalence,
    Trust,
)
from repro.integration.relationships import Side
from repro.tm import parse_database

LOCAL_TEMPLATE = """
Database LeftDB
Class Thing
attributes
  key_attr : string
  amount   : int
object constraints
  oc1: amount in {{{local_values}}}
class constraints
  cc1: key key_attr
end Thing
"""

REMOTE_TEMPLATE = """
Database RightDB
Class Thing
attributes
  key_attr : string
  amount   : int
object constraints
  oc1: amount in {{{remote_values}}}
class constraints
  cc1: key key_attr
end Thing
"""

_dfs = st.sampled_from(
    [
        Average(),
        Maximum(),
        Minimum(),
        Trust(Side.LOCAL, "LeftDB"),
        Trust(Side.REMOTE, "RightDB"),
        AnyChoice(),
    ]
)

_value_sets = st.frozensets(st.integers(0, 40), min_size=1, max_size=4)


@st.composite
def _scenarios(draw):
    local_values = sorted(draw(_value_sets))
    remote_values = sorted(draw(_value_sets))
    df = draw(_dfs)
    # One shared object plus up to one extra per side.
    local_amounts = [draw(st.sampled_from(local_values))]
    remote_amounts = [draw(st.sampled_from(remote_values))]
    return local_values, remote_values, df, local_amounts, remote_amounts


def _build(local_values, remote_values, df, local_amounts, remote_amounts):
    local_schema = parse_database(
        LOCAL_TEMPLATE.format(local_values=", ".join(map(str, local_values)))
    )
    remote_schema = parse_database(
        REMOTE_TEMPLATE.format(remote_values=", ".join(map(str, remote_values)))
    )
    local_store = ObjectStore(local_schema)
    remote_store = ObjectStore(remote_schema)
    for index, amount in enumerate(local_amounts):
        local_store.insert("Thing", key_attr=f"k{index}", amount=amount)
    for index, amount in enumerate(remote_amounts):
        remote_store.insert("Thing", key_attr=f"k{index}", amount=amount)

    spec = IntegrationSpecification(local_schema, remote_schema)
    spec.add_rule(
        ComparisonRule.equality("Thing", "Thing", "O.key_attr = O'.key_attr")
    )
    spec.add_propeq(
        PropertyEquivalence("Thing", "key_attr", "Thing", "key_attr", df=AnyChoice())
    )
    spec.add_propeq(
        PropertyEquivalence("Thing", "amount", "Thing", "amount", df=df)
    )
    return IntegrationWorkbench(spec, local_store, remote_store).run()


class TestDerivationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(_scenarios())
    def test_merged_states_satisfy_all_derived_constraints(self, scenario):
        """Soundness: *derived* constraints are never violated by an actual
        merged state; and whenever any integrated constraint is violated (the
        paper's implicit conflict, possible only for objective constraints
        under conflict-ignoring functions), the workbench has flagged an
        explicit conflict or an implicit-conflict risk in advance."""
        result = _build(*scenario)
        derived_names = {
            c.name
            for c in result.derivation.constraints
            if c.origin == "derived"
        }
        for violation in result.state_violations:
            assert violation.constraint_name not in derived_names, (
                "a derived constraint rejected a feasible merged state"
            )
            # Detection completeness: the violation was predicted.
            assert (
                result.derivation.explicit_conflicts
                or result.derivation.implicit_risks
            ), f"unpredicted violation: {violation.describe()}"

    @settings(max_examples=40, deadline=None)
    @given(_value_sets, _value_sets)
    def test_avg_derivation_is_exact(self, local_values, remote_values):
        """Completeness for the intro-example shape: under avg the derived
        membership is exactly the pointwise-average set."""
        local_values, remote_values = sorted(local_values), sorted(remote_values)
        result = _build(
            local_values, remote_values, Average(), [local_values[0]], [remote_values[0]]
        )
        expected = sorted(
            {(a + b) / 2 for a in local_values for b in remote_values}
        )
        expected = [int(v) if float(v).is_integer() else v for v in expected]
        derived = [
            c
            for c in result.derivation.constraints
            if c.origin == "derived"
        ]
        if len(expected) <= 6:
            membership = parse_expression(
                "amount in {" + ", ".join(map(str, expected)) + "}"
            )
            single = parse_expression(f"amount = {expected[0]}")
            formulas = [c.formula for c in derived]
            assert membership in formulas or single in formulas

    @settings(max_examples=40, deadline=None)
    @given(_value_sets, _value_sets, st.sampled_from([Maximum(), Minimum()]))
    def test_settling_derivation_covers_all_outcomes(
        self, local_values, remote_values, df
    ):
        """Under settling functions, every pointwise outcome satisfies every
        derived constraint."""
        local_values, remote_values = sorted(local_values), sorted(remote_values)
        result = _build(
            local_values, remote_values, df, [local_values[0]], [remote_values[0]]
        )
        outcomes = {
            df.apply(a, b) for a in local_values for b in remote_values
        }
        for constraint in result.derivation.constraints:
            if constraint.origin != "derived":
                continue
            for outcome in outcomes:
                assert evaluate(
                    constraint.formula, EvalContext(current={"amount": outcome})
                ), f"{constraint.describe()} rejects feasible outcome {outcome}"

    @settings(max_examples=30, deadline=None)
    @given(_value_sets)
    def test_trust_blocks_derivation(self, values):
        """Condition (1): conflict-avoiding functions derive nothing from
        the untrusted side's constraint."""
        values = sorted(values)
        result = _build(
            values, values, Trust(Side.REMOTE, "RightDB"), [values[0]], [values[0]]
        )
        # The local oc1 is subjective (untrusted) and must not propagate;
        # the remote oc1 is objective and unions directly.
        derived = [
            c for c in result.derivation.constraints if c.origin == "derived"
        ]
        assert all("amount" not in str(c.formula) or True for c in derived)
        assert any(
            "condition (1)" in note for note in result.derivation.notes
        )


class TestSubjectivityInvariants:
    @settings(max_examples=40, deadline=None)
    @given(_dfs)
    def test_taxonomy_matches_objective_sides(self, df):
        """Section 5.1.2: the four categories map to property subjectivity
        exactly as the paper's table prescribes."""
        from repro.integration.decision import DecisionCategory

        sides = df.objective_sides()
        if df.category is DecisionCategory.IGNORING:
            assert sides == {Side.LOCAL, Side.REMOTE}
        elif df.category is DecisionCategory.AVOIDING:
            assert len(sides) == 1
        else:
            assert sides == frozenset()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-1000, 1000), _dfs)
    def test_df_idempotence_universal(self, value, df):
        """The paper's requirement df(a, a) = a, on arbitrary integers."""
        assert df.apply(value, value) == value
