"""Tests for the Section 3 analysis (rule conditions vs object constraints)."""

import pytest

from repro.constraints import parse_expression
from repro.fixtures import library_integration_spec
from repro.integration import ComparisonRule
from repro.integration.conformation import conform
from repro.integration.relationships import Side
from repro.integration.rule_checks import check_rules


@pytest.fixture(scope="module")
def checked():
    spec = library_integration_spec()
    conformation = conform(spec)
    return spec, conformation, check_rules(spec, conformation)


class TestPaperExample:
    def test_no_conflicts_in_paper_spec(self, checked):
        _, _, result = checked
        assert result.conflicts == []

    def test_derived_rating_constraint(self, checked):
        """Section 3: from O'.ref? = true and oc2 of Proceedings, the derived
        object constraint rating >= 7 follows."""
        _, _, result = checked
        derived = result.derived_for(Side.REMOTE, "Proceedings")
        formulas = {str(c.formula) for c in derived}
        assert any(
            c.formula == parse_expression("rating >= 7") for c in derived
        ), formulas

    def test_derived_ref_condition(self, checked):
        """The intraobject condition itself tightens ref? to {true}."""
        _, _, result = checked
        derived = result.derived_for(Side.REMOTE, "Proceedings")
        assert any(
            c.formula == parse_expression("ref? = true") for c in derived
        )

    def test_nonrefereed_rule_derives_upper_bound(self, checked):
        """ref? = false with oc1 (IEEE implies ref?) also restricts the
        publisher: no constraint relates ratings upward, so only ref? and
        publisher-dependent domains tighten."""
        _, _, result = checked
        analyses = [
            a
            for a in result.analyses
            if a.rule.target_class == "NonRefereedPubl"
        ]
        assert len(analyses) == 1
        formulas = {c.formula for c in analyses[0].derived}
        assert parse_expression("ref? = false") in formulas


class TestConflictDetection:
    def test_conflicting_intraobject_condition(self):
        """A rule requiring rating < 2 on RefereedPubl objects (oc1 demands
        rating >= 2 on the 1..5 scale → >= 4 conformed) conflicts."""
        spec = library_integration_spec()
        spec.add_rule(
            ComparisonRule.similarity(
                "RefereedPubl", "Proceedings", "O.rating < 2", Side.LOCAL
            )
        )
        conformation = conform(spec)
        result = check_rules(spec, conformation)
        assert len(result.conflicts) == 1
        assert "conflict with the object constraints" in result.conflicts[0].detail

    def test_boundary_condition_is_consistent(self):
        spec = library_integration_spec()
        spec.add_rule(
            ComparisonRule.similarity(
                "RefereedPubl", "Proceedings", "O.rating = 2", Side.LOCAL
            )
        )
        conformation = conform(spec)
        result = check_rules(spec, conformation)
        assert result.conflicts == []

    def test_equality_rule_intraobject_conditions_analysed(self):
        spec = library_integration_spec()
        spec.add_rule(
            ComparisonRule.equality(
                "Publication", "Item", "O.isbn = O'.isbn and O'.ref? = true"
            )
        )
        conformation = conform(spec)
        result = check_rules(spec, conformation)
        # ref? is not an Item attribute: the condition cannot be satisfied
        # on the Item side... but structurally it conforms; the analysis
        # registers the condition on the remote side.
        remote_analyses = [
            a
            for a in result.analyses
            if a.side is Side.REMOTE and a.class_name == "Item"
        ]
        assert len(remote_analyses) == 1
