"""Tests for the Section 5.1 subjectivity analysis."""

import pytest

from repro.fixtures import (
    library_integration_spec,
    personnel_integration_spec,
)
from repro.integration import PropertyStatus, analyse_subjectivity
from repro.integration.relationships import Side


@pytest.fixture(scope="module")
def library_analysis():
    return analyse_subjectivity(library_integration_spec())


@pytest.fixture(scope="module")
def personnel_analysis():
    return analyse_subjectivity(personnel_integration_spec())


def status(analysis, name):
    return analysis.constraint_status[name]


class TestPropertySubjectivity:
    """Section 5.1.2's worked classifications."""

    def test_any_makes_both_objective(self, library_analysis):
        """'Publisher.name and Publication.publisher are considered
        objective in our example specification.'"""
        assert (
            library_analysis.status_of_property(Side.LOCAL, "Publication", "publisher")
            is PropertyStatus.OBJECTIVE
        )
        assert (
            library_analysis.status_of_property(Side.REMOTE, "Publisher", "name")
            is PropertyStatus.OBJECTIVE
        )

    def test_trust_splits_objectivity(self, library_analysis):
        """'Publication.ourprice is seen as objective, whereas
        Publication.shopprice is subjective.'"""
        assert (
            library_analysis.status_of_property(Side.LOCAL, "Publication", "ourprice")
            is PropertyStatus.OBJECTIVE
        )
        assert (
            library_analysis.status_of_property(Side.LOCAL, "Publication", "shopprice")
            is PropertyStatus.SUBJECTIVE
        )
        # The mirror: Item.libprice subjective, Item.shopprice objective.
        assert (
            library_analysis.status_of_property(Side.REMOTE, "Item", "libprice")
            is PropertyStatus.SUBJECTIVE
        )
        assert (
            library_analysis.status_of_property(Side.REMOTE, "Item", "shopprice")
            is PropertyStatus.OBJECTIVE
        )

    def test_avg_makes_both_subjective(self, library_analysis):
        """'Both ScientificPubl.rating and Proceedings.rating are seen as
        subjective in our example specification.'"""
        assert (
            library_analysis.status_of_property(Side.LOCAL, "ScientificPubl", "rating")
            is PropertyStatus.SUBJECTIVE
        )
        assert (
            library_analysis.status_of_property(Side.REMOTE, "Proceedings", "rating")
            is PropertyStatus.SUBJECTIVE
        )

    def test_unmapped_property_is_objective(self, library_analysis):
        assert (
            library_analysis.status_of_property(Side.REMOTE, "Proceedings", "ref?")
            is PropertyStatus.OBJECTIVE
        )

    def test_inherited_property_status(self, library_analysis):
        # rating's propeq is declared on ScientificPubl; RefereedPubl inherits.
        assert (
            library_analysis.status_of_property(Side.LOCAL, "RefereedPubl", "rating")
            is PropertyStatus.SUBJECTIVE
        )


class TestConstraintSubjectivity:
    def test_declared_business_rule(self, library_analysis):
        verdict = status(library_analysis, "CSLibrary.Publication.cc2")
        assert verdict.subjective

    def test_price_constraints_subjective_via_values(self, library_analysis):
        """Section 5.1.3: the trust decision functions make the identical
        oc1 constraints of Publication and Item subjective, 'even if it is
        defined in both component databases'."""
        local = status(library_analysis, "CSLibrary.Publication.oc1")
        remote = status(library_analysis, "Bookseller.Item.oc1")
        assert local.subjective and remote.subjective
        assert "subjective properties" in local.reason
        assert "shopprice" in local.reason
        assert "libprice" in remote.reason

    def test_rating_constraints_subjective_via_avg(self, library_analysis):
        local = status(library_analysis, "CSLibrary.RefereedPubl.oc1")
        remote = status(library_analysis, "Bookseller.Proceedings.oc2")
        assert local.subjective and remote.subjective

    def test_objective_constraint_example(self, library_analysis):
        """'An example of an objective constraint would be oc1 of class
        Proceedings' — publisher.name (any → objective) and ref?
        (unmapped → objective)."""
        verdict = status(library_analysis, "Bookseller.Proceedings.oc1")
        assert not verdict.subjective

    def test_membership_constraint_objective(self, library_analysis):
        # oc2 of Publication constrains publisher (any → objective).
        verdict = status(library_analysis, "CSLibrary.Publication.oc2")
        assert not verdict.subjective

    def test_class_constraints_subjective_by_default(self, library_analysis):
        verdict = status(library_analysis, "CSLibrary.ScientificPubl.cc1")
        assert verdict.subjective
        assert "5.2.2" in verdict.reason

    def test_database_constraints_subjective(self, library_analysis):
        verdict = status(library_analysis, "Bookseller.db1")
        assert verdict.subjective
        assert "database" in verdict.reason

    def test_proceedings_oc3_subjective_via_rating(self, library_analysis):
        """oc3 mentions publisher.name (objective) AND rating (subjective):
        the constraint is subjective."""
        verdict = status(library_analysis, "Bookseller.Proceedings.oc3")
        assert verdict.subjective


class TestConsistencyRule:
    def test_declaring_objective_over_subjective_values_violates(self):
        """Section 5.1.3: 'subjectivity of values implies subjectivity of
        constraints' — an objective declaration cannot override it."""
        spec = library_integration_spec()
        spec.declare_objective("CSLibrary.RefereedPubl.oc1")  # involves rating
        analysis = analyse_subjectivity(spec)
        assert any("RefereedPubl.oc1" in v for v in analysis.violations)
        # The constraint stays subjective regardless.
        assert analysis.constraint_status["CSLibrary.RefereedPubl.oc1"].subjective

    def test_objective_database_constraint_violates(self):
        spec = library_integration_spec()
        spec.declare_objective("Bookseller.db1")
        analysis = analyse_subjectivity(spec)
        assert any("db1" in v for v in analysis.violations)

    def test_class_constraint_objective_override_allowed(self):
        spec = library_integration_spec()
        spec.declare_objective("Bookseller.Item.cc1")  # key isbn
        analysis = analyse_subjectivity(spec)
        assert analysis.violations == []
        assert not analysis.constraint_status["Bookseller.Item.cc1"].subjective

    def test_designer_may_declare_objective_props_subjective(self):
        spec = library_integration_spec()
        spec.declare_subjective("Bookseller.Proceedings.oc1")
        analysis = analyse_subjectivity(spec)
        verdict = analysis.constraint_status["Bookseller.Proceedings.oc1"]
        assert verdict.subjective
        assert "declared" in verdict.reason


class TestPersonnelExample:
    def test_salary_business_rule(self, personnel_analysis):
        """The intro's observation: salary < 1500 'may represent a business
        rule adhered to by a specific department' — subjective."""
        verdict = status(personnel_analysis, "PersonnelDB1.Employee.oc2")
        assert verdict.subjective
        assert "declared" in verdict.reason

    def test_trav_reimb_constraints_subjective(self, personnel_analysis):
        """The avg policy makes both trav_reimb membership constraints
        subjective — they participate in derivation instead of union."""
        assert status(personnel_analysis, "PersonnelDB1.Employee.oc1").subjective
        assert status(personnel_analysis, "PersonnelDB2.Employee.oc1").subjective

    def test_xi_of_constraint(self, personnel_analysis):
        """Ξ(φ) for trav_reimb in {10,20} is {Employee.trav_reimb}."""
        spec = personnel_analysis.spec
        oc1 = spec.local_schema.class_named("Employee").constraints[0]
        xi = personnel_analysis.subjective_properties_in(oc1, Side.LOCAL)
        assert xi == {("Employee", "trav_reimb")}
