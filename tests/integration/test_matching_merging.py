"""Tests for rule matching, object merging and the derived hierarchy —
the Figure 2 process of the paper."""

import pytest

from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration.conformation import conform
from repro.integration.hierarchy import derive_hierarchy
from repro.integration.matching import match_instances
from repro.integration.merging import merge_instances
from repro.integration.relationships import Side


@pytest.fixture(scope="module")
def library_setup():
    spec = library_integration_spec()
    local_store, local_named = cslibrary_store()
    remote_store, remote_named = bookseller_store()
    match = match_instances(spec, local_store, remote_store)
    conformation = conform(spec, local_store, remote_store)
    view = merge_instances(spec, conformation, match)
    hierarchy = derive_hierarchy(view, conformation)
    return {
        "spec": spec,
        "match": match,
        "conformation": conformation,
        "view": view,
        "hierarchy": hierarchy,
        "local_named": local_named,
        "remote_named": remote_named,
    }


class TestMatching:
    def test_equality_matches_on_isbn(self, library_setup):
        match = library_setup["match"]
        pairs = {
            (m.local.state["isbn"], m.remote.state["isbn"]) for m in match.equalities
        }
        assert pairs == {("ISBN-001", "ISBN-001"), ("ISBN-002", "ISBN-002")}

    def test_refereed_similarity(self, library_setup):
        match = library_setup["match"]
        refereed = {
            m.source.state["isbn"]
            for m in match.similarities
            if m.target_class == "RefereedPubl"
        }
        assert refereed == {"ISBN-001", "ISBN-006"}

    def test_nonrefereed_similarity(self, library_setup):
        match = library_setup["match"]
        nonrefereed = {
            m.source.state["isbn"]
            for m in match.similarities
            if m.target_class == "NonRefereedPubl"
        }
        assert nonrefereed == {"ISBN-007"}

    def test_local_to_remote_similarity(self, library_setup):
        """Sim(O:ScientificPubl, Proceedings) <- contains(O.title, 'Proceed')."""
        match = library_setup["match"]
        proceedings = {
            m.source.state["isbn"]
            for m in match.similarities
            if m.target_class == "Proceedings" and m.source_side is Side.LOCAL
        }
        assert proceedings == {"ISBN-001", "ISBN-003"}


class TestMerging:
    def test_equal_objects_merged(self, library_setup):
        view = library_setup["view"]
        merged = view.merged_objects()
        merged_isbns = {
            obj.state["isbn"]
            for obj in merged
            if "isbn" in obj.state
        }
        assert {"ISBN-001", "ISBN-002"} <= merged_isbns

    def test_publishers_merged_via_descriptivity(self, library_setup):
        """VirtPublisher('ACM') merges with the bookseller's Publisher."""
        view = library_setup["view"]
        merged_names = {
            obj.state.get("name")
            for obj in view.merged_objects()
            if "name" in obj.state
        }
        assert merged_names == {"ACM", "IEEE", "Springer"}

    def test_trust_decision_functions_pick_values(self, library_setup):
        """Global libprice comes from CSLibrary, shopprice from Bookseller."""
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        assert vldb.state["libprice"] == 90.0  # trust(CSLibrary): local 90
        assert vldb.state["shopprice"] == 99.0  # trust(Bookseller): remote 99

    def test_avg_rating_on_common_scale(self, library_setup):
        """Library rating 4 (→8 conformed) and bookseller 8 average to 8."""
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        assert vldb.state["rating"] == 8

    def test_union_merges_editor_sets(self, library_setup):
        view = library_setup["view"]
        tp = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-002"
        )
        assert tp.state["editors"] == frozenset({"Gray", "Reuter"})

    def test_merged_references_not_flagged_as_differences(self, library_setup):
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        assert "publisher" not in vldb.value_differences

    def test_value_differences_recorded(self, library_setup):
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        # Prices disagreed (90 vs 92, 95 vs 99).
        assert "libprice" in vldb.value_differences
        assert vldb.value_differences["libprice"] == (90.0, 92.0)

    def test_singleton_objects_survive(self, library_setup):
        view = library_setup["view"]
        isbns = {
            obj.state["isbn"] for obj in view.objects() if "isbn" in obj.state
        }
        assert {"ISBN-003", "ISBN-004", "ISBN-005", "ISBN-006", "ISBN-007", "ISBN-008"} <= isbns

    def test_references_remapped_to_global_oids(self, library_setup):
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        publisher = view.get(vldb.state["publisher"])
        assert publisher.state["name"] == "ACM"


class TestClassification:
    def test_merged_object_classified_on_both_sides(self, library_setup):
        view = library_setup["view"]
        vldb = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-001"
        )
        assert "CSLibrary.RefereedPubl" in vldb.classes
        assert "CSLibrary.Publication" in vldb.classes  # ancestor
        assert "Bookseller.Proceedings" in vldb.classes
        assert "Bookseller.Item" in vldb.classes  # ancestor

    def test_similarity_classifies_remote_into_local_class(self, library_setup):
        view = library_setup["view"]
        icde = next(
            obj for obj in view.objects() if obj.state.get("isbn") == "ISBN-006"
        )
        assert "CSLibrary.RefereedPubl" in icde.classes
        assert "CSLibrary.ScientificPubl" in icde.classes  # ancestor closure

    def test_local_object_classified_into_remote_class(self, library_setup):
        view = library_setup["view"]
        dutch = next(
            obj for obj in view.objects() if obj.state.get("isbn") == "ISBN-003"
        )
        assert "Bookseller.Proceedings" in dutch.classes
        assert "Bookseller.Item" in dutch.classes

    def test_untouched_objects_stay_local(self, library_setup):
        view = library_setup["view"]
        newsletter = next(
            obj for obj in view.objects() if obj.state.get("isbn") == "ISBN-005"
        )
        assert newsletter.classes == {"CSLibrary.Publication"}

    def test_global_extents(self, library_setup):
        view = library_setup["view"]
        refereed = view.extent("CSLibrary.RefereedPubl")
        isbns = {obj.state["isbn"] for obj in refereed}
        assert isbns == {"ISBN-001", "ISBN-002", "ISBN-006"}


class TestDerivedHierarchy:
    def test_refereed_proceedings_virtual_class(self, library_setup):
        """Figure 2 / Section 2.3: the partial overlap of Proceedings and
        RefereedPubl yields the virtual subclass RefereedProceedings."""
        hierarchy = library_setup["hierarchy"]
        view = library_setup["view"]
        assert "RefereedProceedings" in hierarchy.virtual_classes
        members = {
            obj.state["isbn"] for obj in view.extent("RefereedProceedings")
        }
        assert members == {"ISBN-001", "ISBN-006"}

    def test_virtual_class_is_subclass_of_both(self, library_setup):
        hierarchy = library_setup["hierarchy"]
        assert hierarchy.is_subclass("RefereedProceedings", "CSLibrary.RefereedPubl")
        assert hierarchy.is_subclass("RefereedProceedings", "Bookseller.Proceedings")

    def test_publisher_subclass_derived_from_extents(self, library_setup):
        """Every bookseller Publisher merged into a VirtPublisher, but not
        vice versa: Publisher isa VirtPublisher is derived."""
        hierarchy = library_setup["hierarchy"]
        assert (
            "Bookseller.Publisher",
            "CSLibrary.VirtPublisher",
        ) in hierarchy.derived_edges

    def test_declared_isa_edges_present(self, library_setup):
        hierarchy = library_setup["hierarchy"]
        assert hierarchy.is_subclass(
            "CSLibrary.RefereedPubl", "CSLibrary.Publication"
        )
        assert hierarchy.is_subclass("Bookseller.Proceedings", "Bookseller.Item")


class TestPersonnelMerging:
    @pytest.fixture()
    def personnel_view(self):
        spec = personnel_integration_spec()
        db1, db2, named = personnel_stores()
        match = match_instances(spec, db1, db2)
        conformation = conform(spec, db1, db2)
        view = merge_instances(spec, conformation, match)
        return view

    def test_shared_employee_merged(self, personnel_view):
        merged = personnel_view.merged_objects()
        assert len(merged) == 1
        assert merged[0].state["ssn"] == "100-20"

    def test_intro_example_avg_reimbursement(self, personnel_view):
        """The paper's policy: avg(20, 14) = 17 for the shared employee."""
        bob = personnel_view.merged_objects()[0]
        assert bob.state["trav_reimb"] == 17

    def test_salary_trusts_db1(self, personnel_view):
        bob = personnel_view.merged_objects()[0]
        assert bob.state["salary"] == 1400.0

    def test_local_only_employees_keep_values(self, personnel_view):
        alice = next(
            obj for obj in personnel_view.objects() if obj.state["ssn"] == "100-10"
        )
        assert alice.state["trav_reimb"] == 10
        assert alice.classes == {"PersonnelDB1.Employee"}

    def test_extent_counts(self, personnel_view):
        assert len(personnel_view.extent("PersonnelDB1.Employee")) == 2
        assert len(personnel_view.extent("PersonnelDB2.Employee")) == 2
        assert len(list(personnel_view.objects())) == 3
