"""Tests for the auto-repair loop, the integrated view API, the hierarchy
helpers and the resolution suggestions."""

import pytest

from repro.constraints import parse_expression
from repro.errors import IntegrationError
from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration import IntegrationWorkbench
from repro.integration.resolution import (
    suggest_for_explicit,
    suggest_for_implicit_risk,
)


@pytest.fixture(scope="module")
def library_result():
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()
    return IntegrationWorkbench(
        library_integration_spec(), local_store, remote_store
    ).run()


class TestAutoRepair:
    def test_repair_loop_reaches_fixpoint(self):
        local_store, _ = cslibrary_store()
        remote_store, _ = bookseller_store()
        workbench = IntegrationWorkbench(
            library_integration_spec(), local_store, remote_store
        )
        history = workbench.run_with_repairs()
        assert len(history) >= 2
        first, last = history[0], history[-1]
        assert len(first.derivation.similarity_conflicts) > 0
        assert last.derivation.similarity_conflicts == []

    def test_repaired_rules_are_installed(self):
        workbench = IntegrationWorkbench(library_integration_spec())
        workbench.run_with_repairs()
        nonrefereed = next(
            r
            for r in workbench.spec.rules
            if r.target_class == "NonRefereedPubl"
        )
        assert nonrefereed.condition == parse_expression(
            "O'.ref? = false and O'.rating <= 6"
        )

    def test_consistent_spec_single_round(self):
        db1, db2, _ = personnel_stores()
        workbench = IntegrationWorkbench(personnel_integration_spec(), db1, db2)
        history = workbench.run_with_repairs()
        assert len(history) == 1

    def test_max_rounds_respected(self):
        workbench = IntegrationWorkbench(library_integration_spec())
        history = workbench.run_with_repairs(max_rounds=1)
        assert len(history) == 1


class TestIntegratedViewAPI:
    def test_select_with_source_predicate(self, library_result):
        view = library_result.view
        hits = view.select("Bookseller.Proceedings", "rating >= 8")
        assert {obj.state["isbn"] for obj in hits} == {"ISBN-001", "ISBN-006"}

    def test_select_with_callable(self, library_result):
        view = library_result.view
        hits = view.select(
            "CSLibrary.Publication", lambda o: o.state.get("isbn") == "ISBN-005"
        )
        assert len(hits) == 1

    def test_select_tolerates_partial_states(self, library_result):
        """Similarity-classified objects may lack local-only properties;
        select must skip them, not crash."""
        view = library_result.view
        hits = view.select("CSLibrary.RefereedPubl", "avgAccRate <= 1.0")
        # Only objects that actually carry avgAccRate qualify.
        assert all("avgAccRate" in obj.state for obj in hits)

    def test_select_traverses_merged_references(self, library_result):
        view = library_result.view
        acm = view.select("Bookseller.Item", "publisher.name = 'ACM'")
        assert {obj.state["isbn"] for obj in acm} == {"ISBN-001", "ISBN-008"}

    def test_unknown_class_raises(self, library_result):
        with pytest.raises(IntegrationError):
            library_result.view.extent("Nowhere.Class")

    def test_get_unknown_oid_raises(self, library_result):
        with pytest.raises(IntegrationError):
            library_result.view.get("g999")

    def test_satisfies_returns_none_for_missing_props(self, library_result):
        view = library_result.view
        newsletter = next(
            obj for obj in view.objects() if obj.state.get("isbn") == "ISBN-005"
        )
        verdict = view.satisfies(newsletter, parse_expression("ref? = true"))
        assert verdict is None


class TestHierarchyHelpers:
    def test_parents_of(self, library_result):
        hierarchy = library_result.hierarchy
        parents = hierarchy.parents_of("RefereedProceedings")
        assert "CSLibrary.RefereedPubl" in parents
        assert "Bookseller.Proceedings" in parents

    def test_is_subclass_reflexive(self, library_result):
        hierarchy = library_result.hierarchy
        assert hierarchy.is_subclass("CSLibrary.Publication", "CSLibrary.Publication")

    def test_unknown_nodes(self, library_result):
        hierarchy = library_result.hierarchy
        assert not hierarchy.is_subclass("Ghost", "CSLibrary.Publication")
        assert hierarchy.parents_of("Ghost") == set()

    def test_no_spurious_equivalences(self, library_result):
        assert library_result.hierarchy.equivalent_classes == []


class TestResolutionSuggestions:
    def test_explicit_conflict_suggestions(self):
        from repro.integration.conflicts import ExplicitConflict

        conflict = ExplicitConflict(
            "A ⋈ B", ("DB1.C.oc1", "DB2.C.oc1"), "unsatisfiable"
        )
        suggestions = suggest_for_explicit(conflict, library_integration_spec())
        options = {s.option for s in suggestions}
        assert options == {1, 2}
        assert any(s.action == "demote-constraint" for s in suggestions)

    def test_implicit_risk_suggestions(self):
        from repro.integration.conflicts import ImplicitConflictRisk

        risk = ImplicitConflictRisk("A ⋈ B", "DB1.C.oc2", "name", "risk")
        suggestions = suggest_for_implicit_risk(risk, library_integration_spec())
        assert {s.option for s in suggestions} == {1, 3}
        assert any("trust" in s.detail for s in suggestions)

    def test_suggestion_describe(self):
        from repro.integration.conflicts import ImplicitConflictRisk

        risk = ImplicitConflictRisk("A ⋈ B", "DB1.C.oc2", "name", "risk")
        suggestion = suggest_for_implicit_risk(risk, library_integration_spec())[0]
        assert "option 3" in suggestion.describe()
