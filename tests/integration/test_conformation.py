"""Tests for the conformation phase (Sections 2.3 and 4).

The two worked examples of Section 4 are asserted exactly:
* ``oc2`` of Publication is reallocated to ``VirtPublisher`` as
  ``name in KNOWNPUBLISHERS``;
* ``oc1`` of RefereedPubl (``rating >= 2``) conforms to ``rating >= 4``
  through the ``multiply(2)`` conversion.
"""

import pytest

from repro.constraints import parse_expression, to_source
from repro.engine import ObjectStore
from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration.conformation import conform
from repro.integration.relationships import Side
from repro.types import STRING, ClassRef, EnumType


@pytest.fixture(scope="module")
def conformation():
    spec = library_integration_spec()
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()
    return conform(spec, local_store, remote_store)


def conformed_constraint(conformation, side, qualified_name):
    return conformation.on(side).conformed_constraints[qualified_name]


class TestSchemaConformation:
    def test_virtual_publisher_class_created(self, conformation):
        local = conformation.local.schema
        assert local.has_class("VirtPublisher")
        assert local.class_named("VirtPublisher").virtual
        assert local.attribute_type("VirtPublisher", "name") == STRING

    def test_publisher_attribute_becomes_reference(self, conformation):
        local = conformation.local.schema
        assert local.attribute_type("Publication", "publisher") == ClassRef(
            "VirtPublisher"
        )

    def test_ourprice_renamed_to_libprice(self, conformation):
        local = conformation.local.schema
        attributes = local.effective_attributes("Publication")
        assert "libprice" in attributes
        assert "ourprice" not in attributes

    def test_rating_type_converted(self, conformation):
        """multiply(2) turns the 1..5 scale into the even points of 1..10."""
        local = conformation.local.schema
        assert local.attribute_type("ScientificPubl", "rating") == EnumType(
            frozenset({2, 4, 6, 8, 10})
        )

    def test_remote_schema_mostly_untouched(self, conformation):
        remote = conformation.remote.schema
        assert remote.attribute_type("Proceedings", "rating").describe() == "1..10"
        # Item.authors conforms to the local name 'editors'.
        assert "editors" in remote.effective_attributes("Item")

    def test_conformed_propeqs_updated(self, conformation):
        by_name = {p.name: p for p in conformation.propeqs}
        assert by_name["name"].local_class == "VirtPublisher"
        assert by_name["name"].remote_class == "Publisher"
        assert by_name["libprice"].local_class == "Publication"
        assert by_name["rating"].local_class == "ScientificPubl"


class TestConstraintConformation:
    def test_paper_example_oc2_reallocated(self, conformation):
        """Section 4: 'object constraint on VirtPublisher:
        oc1: name in KNOWNPUBLISHERS'."""
        oc2 = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.Publication.oc2"
        )
        assert oc2.owner == "VirtPublisher"
        assert oc2.formula == parse_expression("name in KNOWNPUBLISHERS")

    def test_paper_example_rating_conversion(self, conformation):
        """Section 4: 'object constraint on RefereedPubl: oc1: rating >= 4'."""
        oc1 = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.RefereedPubl.oc1"
        )
        assert oc1.owner == "RefereedPubl"
        assert oc1.formula == parse_expression("rating >= 4")

    def test_nonrefereed_bound_converted(self, conformation):
        oc1 = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.NonRefereedPubl.oc1"
        )
        assert oc1.formula == parse_expression("rating <= 6")

    def test_price_constraints_become_identical(self, conformation):
        """'the identical conformed constraints oc1 of classes Publication
        and Item' (Section 5.1.3)."""
        local = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.Publication.oc1"
        )
        remote = conformed_constraint(
            conformation, Side.REMOTE, "Bookseller.Item.oc1"
        )
        assert local.formula == remote.formula == parse_expression(
            "libprice <= shopprice"
        )

    def test_avg_class_constraint_converted(self, conformation):
        cc1 = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.ScientificPubl.cc1"
        )
        assert cc1.formula == parse_expression(
            "(avg (collect x for x in self) over rating) < 8"
        )

    def test_key_constraints_survive(self, conformation):
        cc1 = conformed_constraint(
            conformation, Side.LOCAL, "CSLibrary.Publication.cc1"
        )
        assert to_source(cc1.formula) == "key isbn"

    def test_remote_conditional_constraints_conformed(self, conformation):
        oc3 = conformed_constraint(
            conformation, Side.REMOTE, "Bookseller.Proceedings.oc3"
        )
        assert oc3.formula == parse_expression(
            "publisher.name = 'ACM' implies rating >= 6"
        )

    def test_database_constraint_conformed(self, conformation):
        db1 = conformed_constraint(conformation, Side.REMOTE, "Bookseller.db1")
        assert db1.formula == parse_expression(
            "forall p in Publisher exists i in Item | i.publisher = p"
        )

    def test_nothing_dropped_in_object_view(self, conformation):
        assert conformation.local.dropped_constraints == []
        assert conformation.remote.dropped_constraints == []


class TestInstanceConformation:
    def test_virtual_publisher_objects_created(self, conformation):
        virtuals = conformation.local.instances_of("VirtPublisher")
        names = {obj.state["name"] for obj in virtuals}
        assert names == {"ACM", "Springer", "Kluwer", "IEEE", "Elsevier"}
        assert all(obj.virtual for obj in virtuals)

    def test_publications_reference_virtual_publishers(self, conformation):
        local = conformation.local
        vldb = next(
            obj for obj in local.instances if obj.source_oid and "RefereedPubl" in obj.oid
        )
        publisher_oid = vldb.state["publisher"]
        publisher = next(o for o in local.instances if o.oid == publisher_oid)
        assert publisher.class_name == "VirtPublisher"

    def test_rating_values_converted(self, conformation):
        local = conformation.local
        rated = [
            obj.state["rating"]
            for obj in local.instances_of("ScientificPubl")
        ]
        assert sorted(rated) == [4, 6, 8]  # 2, 3, 4 on the 1..5 scale

    def test_ourprice_values_renamed(self, conformation):
        local = conformation.local
        publication = local.instances_of("Publication")[0]
        assert "libprice" in publication.state
        assert "ourprice" not in publication.state

    def test_remote_reference_oids_prefixed(self, conformation):
        remote = conformation.remote
        item = remote.instances_of("Proceedings")[0]
        assert item.state["publisher"].startswith("remote:Publisher#")

    def test_remote_authors_renamed_to_editors(self, conformation):
        remote = conformation.remote
        item = remote.instances_of("Item")[0]
        assert "editors" in item.state

    def test_conformed_oids_carry_side(self, conformation):
        assert all(o.oid.startswith("local:") for o in conformation.local.instances)
        assert all(o.oid.startswith("remote:") for o in conformation.remote.instances)


class TestValueView:
    """The alternative resolution of the object-value conflict: hiding."""

    @pytest.fixture()
    def value_conformation(self):
        spec = library_integration_spec()
        local_store, _ = cslibrary_store()
        remote_store, _ = bookseller_store()
        return conform(spec, local_store, remote_store, descriptivity_view="value")

    def test_publisher_class_hidden(self, value_conformation):
        remote = value_conformation.remote.schema
        assert not remote.has_class("Publisher")

    def test_item_publisher_becomes_value(self, value_conformation):
        remote = value_conformation.remote.schema
        assert remote.attribute_type("Item", "publisher") == STRING

    def test_instances_cast_to_values(self, value_conformation):
        remote = value_conformation.remote
        item = remote.instances_of("Proceedings")[0]
        assert isinstance(item.state["publisher"], str)
        assert not item.state["publisher"].startswith("remote:")

    def test_hidden_database_constraint_dropped(self, value_conformation):
        dropped = dict(value_conformation.remote.dropped_constraints)
        assert "Bookseller.db1" in dropped

    def test_location_constraints_would_be_hidden(self):
        """A constraint on Publisher.location is dropped when hiding."""
        spec = library_integration_spec()
        from repro.constraints.model import Constraint, ConstraintKind

        publisher = spec.remote_schema.class_named("Publisher")
        publisher.add_constraint(
            Constraint(
                "oc9",
                ConstraintKind.OBJECT,
                parse_expression("location != 'Atlantis'"),
                database="Bookseller",
            )
        )
        result = conform(spec, descriptivity_view="value")
        dropped = dict(result.remote.dropped_constraints)
        assert "Bookseller.Publisher.oc9" in dropped

    def test_paths_through_hidden_class_collapse(self, value_conformation):
        oc1 = value_conformation.remote.conformed_constraints[
            "Bookseller.Proceedings.oc1"
        ]
        assert oc1.formula == parse_expression("publisher = 'IEEE' implies ref? = true")


class TestPersonnelConformation:
    def test_identity_conformation(self):
        spec = personnel_integration_spec()
        db1, db2, _ = personnel_stores()
        result = conform(spec, db1, db2)
        oc1 = result.local.conformed_constraints["PersonnelDB1.Employee.oc1"]
        assert oc1.formula == parse_expression("trav_reimb in {10, 20}")
        oc1_remote = result.remote.conformed_constraints["PersonnelDB2.Employee.oc1"]
        assert oc1_remote.formula == parse_expression("trav_reimb in {14, 24}")

    def test_instances_pass_through(self):
        spec = personnel_integration_spec()
        db1, db2, _ = personnel_stores()
        result = conform(spec, db1, db2)
        assert len(result.local.instances) == 2
        assert len(result.remote.instances) == 2
