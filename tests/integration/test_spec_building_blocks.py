"""Tests for rules, conversion/decision functions, propeq and the spec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import parse_expression
from repro.errors import ConformationError, SpecificationError
from repro.fixtures import (
    bookseller_schema,
    cslibrary_schema,
    library_integration_spec,
    personnel_integration_spec,
)
from repro.integration import (
    AnyChoice,
    Average,
    ComparisonRule,
    DecisionCategory,
    IdentityConversion,
    LinearConversion,
    MappingConversion,
    Maximum,
    Minimum,
    PropertyEquivalence,
    RelationshipKind,
    Trust,
    Union,
)
from repro.integration.relationships import Side
from repro.integration.rules import rebase_condition
from repro.types import INT, REAL, EnumType, RangeType


class TestComparisonRules:
    def test_equality_rule(self):
        rule = ComparisonRule.equality("Publication", "Item", "O.isbn = O'.isbn")
        assert rule.kind is RelationshipKind.EQUALITY
        assert rule.describe() == "Eq(O:Publication, O':Item) <- O.isbn = O'.isbn"

    def test_interobject_vs_intraobject_split(self):
        rule = ComparisonRule.equality(
            "Publication", "Item", "O.isbn = O'.isbn and O'.ref? = true and O.rating >= 2"
        )
        inter = rule.interobject_conditions()
        assert inter == [parse_expression("O.isbn = O'.isbn")]
        assert rule.intraobject_conditions(Side.REMOTE) == [
            parse_expression("O'.ref? = true")
        ]
        assert rule.intraobject_conditions(Side.LOCAL) == [
            parse_expression("O.rating >= 2")
        ]

    def test_similarity_rule_paper_form(self):
        rule = ComparisonRule.similarity(
            "Proceedings", "RefereedPubl", "O'.ref? = true"
        )
        assert rule.source_side is Side.REMOTE
        assert rule.intraobject_conditions(Side.REMOTE) == [
            parse_expression("O'.ref? = true")
        ]

    def test_rebase_condition(self):
        condition = parse_expression("O'.ref? = true")
        assert rebase_condition(condition, Side.REMOTE) == parse_expression(
            "ref? = true"
        )

    def test_strengthened(self):
        rule = ComparisonRule.similarity("Proceedings", "RefereedPubl", "O'.ref? = true")
        repaired = rule.strengthened(parse_expression("O'.rating >= 4"))
        assert repaired.condition == parse_expression(
            "O'.ref? = true and O'.rating >= 4"
        )
        # The original is untouched (rules are repaired by copy).
        assert rule.condition == parse_expression("O'.ref? = true")

    def test_classes_on_sides(self):
        eq = ComparisonRule.equality("Publication", "Item", "O.isbn = O'.isbn")
        assert eq.classes_on(Side.LOCAL) == {"Publication"}
        assert eq.classes_on(Side.REMOTE) == {"Item"}
        sim = ComparisonRule.similarity("Proceedings", "RefereedPubl", "O'.ref? = true")
        assert sim.classes_on(Side.REMOTE) == {"Proceedings"}
        assert sim.classes_on(Side.LOCAL) == {"RefereedPubl"}


class TestConversionFunctions:
    def test_identity(self):
        cf = IdentityConversion()
        assert cf.apply(5) == 5
        assert cf.is_identity
        assert cf.convert_type(INT) == INT

    def test_multiply_two_paper_conversion(self):
        cf = LinearConversion(2)
        assert cf.apply(2) == 4
        assert cf.convert_constant(2, ">=") == (4, ">=")
        assert cf.name == "multiply(2)"

    def test_linear_type_conversion_range_to_enum(self):
        cf = LinearConversion(2)
        converted = cf.convert_type(RangeType(1, 5))
        assert converted == EnumType(frozenset({2, 4, 6, 8, 10}))

    def test_negative_factor_flips_comparisons(self):
        cf = LinearConversion(-1)
        assert cf.convert_constant(3, "<=") == (-3, ">=")

    def test_zero_factor_rejected(self):
        with pytest.raises(ConformationError):
            LinearConversion(0)

    def test_fractional_factor_realises_type(self):
        assert LinearConversion(0.5).convert_type(INT) == REAL

    def test_mapping_conversion(self):
        cf = MappingConversion({"A": 1, "B": 2})
        assert cf.apply("A") == 1
        assert cf.convert_type(EnumType(frozenset({"A", "B"}))) == EnumType(
            frozenset({1, 2})
        )

    def test_mapping_rejects_order_comparison(self):
        cf = MappingConversion({"A": 1})
        with pytest.raises(ConformationError):
            cf.convert_constant("A", "<")

    def test_mapping_must_be_injective(self):
        with pytest.raises(ConformationError):
            MappingConversion({"A": 1, "B": 1})

    def test_mapping_missing_entry(self):
        with pytest.raises(ConformationError):
            MappingConversion({"A": 1}).apply("Z")

    @given(st.integers(-100, 100))
    def test_linear_identity_composition(self, value):
        cf = LinearConversion(2, 3)
        assert cf.apply(value) == 2 * value + 3


class TestDecisionFunctions:
    def test_categories(self):
        assert AnyChoice().category is DecisionCategory.IGNORING
        assert Trust(Side.LOCAL).category is DecisionCategory.AVOIDING
        assert Maximum().category is DecisionCategory.SETTLING
        assert Average().category is DecisionCategory.ELIMINATING
        assert Union().category is DecisionCategory.ELIMINATING

    def test_objective_sides_per_taxonomy(self):
        """Section 5.1.2's property-subjectivity table."""
        assert AnyChoice().objective_sides() == {Side.LOCAL, Side.REMOTE}
        assert Trust(Side.LOCAL).objective_sides() == {Side.LOCAL}
        assert Trust(Side.REMOTE).objective_sides() == {Side.REMOTE}
        assert Maximum().objective_sides() == frozenset()
        assert Average().objective_sides() == frozenset()

    def test_apply_semantics(self):
        assert Trust(Side.LOCAL).apply(26, 22) == 26
        assert Trust(Side.REMOTE).apply(29, 25) == 25
        assert Maximum().apply(3, 7) == 7
        assert Minimum().apply(3, 7) == 3
        assert Average().apply(20, 14) == 17
        assert Union().apply({"a"}, {"b"}) == {"a", "b"}
        assert AnyChoice().apply(1, 2) == 1
        assert AnyChoice(Side.REMOTE).apply(1, 2) == 2

    @given(st.integers(-50, 50))
    def test_df_idempotence_requirement(self, value):
        """The paper requires df(a, a) = a for every decision function."""
        for df in (AnyChoice(), Trust(Side.LOCAL), Maximum(), Minimum(), Average()):
            assert df.apply(value, value) == value

    def test_union_idempotent_on_sets(self):
        assert Union().apply(frozenset({"x"}), frozenset({"x"})) == frozenset({"x"})

    def test_check_idempotent_catches_bad_df(self):
        class Bad(Average):
            name = "bad"

            def apply(self, local, remote):
                return local + remote

        with pytest.raises(SpecificationError):
            Bad().check_idempotent([1])

    def test_combinators(self):
        assert Average().combinator == "avg"
        assert Maximum().combinator == "max"
        assert Trust(Side.LOCAL).combinator == "first"
        assert AnyChoice().combinator is None


class TestPropertyEquivalence:
    def test_defaults(self):
        propeq = PropertyEquivalence("A", "p", "B", "q", df=Average())
        assert propeq.conformed_name == "p"
        assert propeq.cf_on(Side.LOCAL).is_identity

    def test_requires_df(self):
        with pytest.raises(SpecificationError):
            PropertyEquivalence("A", "p", "B", "q")

    def test_describe_paper_form(self):
        propeq = PropertyEquivalence(
            "ScientificPubl", "rating", "Proceedings", "rating",
            local_cf=LinearConversion(2),
            df=Average(),
        )
        assert propeq.describe() == (
            "propeq(ScientificPubl.rating, Proceedings.rating, "
            "multiply(2), id, avg)"
        )


class TestSpecificationValidation:
    def test_paper_spec_is_valid(self):
        assert library_integration_spec().validate() == []

    def test_personnel_spec_is_valid(self):
        assert personnel_integration_spec().validate() == []

    def test_unknown_rule_class(self):
        spec = library_integration_spec()
        spec.add_rule(ComparisonRule.equality("Ghost", "Item", "O.x = O'.x"))
        issues = spec.validate()
        assert any("unknown local class 'Ghost'" in i.message for i in issues)

    def test_unknown_similarity_target(self):
        spec = library_integration_spec()
        spec.add_rule(ComparisonRule.similarity("Proceedings", "Ghost"))
        issues = spec.validate()
        assert any("unknown target class 'Ghost'" in i.message for i in issues)

    def test_unknown_propeq_property(self):
        spec = library_integration_spec()
        spec.add_propeq(
            PropertyEquivalence("Publication", "ghost", "Item", "title", df=AnyChoice())
        )
        issues = spec.validate()
        assert any("no property 'ghost'" in i.message for i in issues)

    def test_conformed_name_collision(self):
        spec = library_integration_spec()
        spec.add_propeq(
            PropertyEquivalence(
                "Publication", "title", "Item", "shopprice",
                df=AnyChoice(),
                conformed_name="libprice",  # clashes with ourprice's rename
            )
        )
        issues = spec.validate()
        assert any("already used" in i.message for i in issues)

    def test_bad_df_reported(self):
        class Bad(Average):
            name = "bad"

            def apply(self, local, remote):
                return local + remote

        spec = library_integration_spec()
        spec.add_propeq(
            PropertyEquivalence(
                "ScientificPubl", "rating", "Proceedings", "rating", df=Bad()
            )
        )
        issues = spec.validate()
        assert any("df(a, a) = a" in i.message for i in issues)

    def test_unknown_declaration(self):
        spec = library_integration_spec()
        spec.declare_subjective("CSLibrary.Publication.nothere")
        issues = spec.validate()
        assert any("unknown constraint" in i.message for i in issues)

    def test_contradictory_declarations(self):
        spec = library_integration_spec()
        spec.declare_subjective("CSLibrary.RefereedPubl.oc1")
        spec.declare_objective("CSLibrary.RefereedPubl.oc1")
        issues = spec.validate()
        assert any("both subjective and objective" in i.message for i in issues)

    def test_raise_on_error(self):
        spec = library_integration_spec()
        spec.add_rule(ComparisonRule.equality("Ghost", "Item", "O.x = O'.x"))
        with pytest.raises(SpecificationError):
            spec.validate(raise_on_error=True)


class TestAffectedClasses:
    def test_affected_local_classes(self):
        spec = library_integration_spec()
        affected = spec.affected_classes(Side.LOCAL)
        # Equality on Publication affects Publication; similarity adds remote
        # objects into RefereedPubl / NonRefereedPubl and (transitively) their
        # ancestors' deep extents.
        assert "Publication" in affected
        assert "RefereedPubl" in affected
        assert "ScientificPubl" in affected
        # ProfessionalPubl is untouched: objective extension.
        assert "ProfessionalPubl" not in affected

    def test_affected_remote_classes(self):
        spec = library_integration_spec()
        affected = spec.affected_classes(Side.REMOTE)
        assert "Item" in affected
        assert "Proceedings" in affected
        assert "Monograph" not in affected
        assert "Publisher" not in affected

    def test_propeq_lookup_through_inheritance(self):
        spec = library_integration_spec()
        found = spec.propeq_for(Side.LOCAL, "RefereedPubl", "ourprice")
        assert found is not None
        assert found.conformed_name == "libprice"

    def test_propeq_lookup_miss(self):
        spec = library_integration_spec()
        assert spec.propeq_for(Side.LOCAL, "Publication", "rating") is None
