"""Tests for the textual specification parser and the CLI."""

import pytest

from repro.constraints import parse_expression
from repro.errors import ParseError
from repro.fixtures import (
    bookseller_schema,
    bookseller_source,
    cslibrary_schema,
    cslibrary_source,
    library_integration_spec,
    personnel_db1_schema,
    personnel_db2_schema,
    personnel_integration_spec,
)
from repro.fixtures.spec_source import LIBRARY_SPEC_SOURCE, PERSONNEL_SPEC_SOURCE
from repro.integration import DecisionCategory, IntegrationWorkbench, RelationshipKind
from repro.integration.relationships import Side
from repro.integration.spec_parser import parse_specification


@pytest.fixture(scope="module")
def parsed_library_spec():
    return parse_specification(
        LIBRARY_SPEC_SOURCE, cslibrary_schema(), bookseller_schema()
    )


class TestSpecParser:
    def test_parses_all_rules(self, parsed_library_spec):
        spec = parsed_library_spec
        assert len(spec.equality_rules()) == 1
        assert len(spec.descriptivity_rules()) == 1
        assert len(spec.similarity_rules()) == 3

    def test_equality_rule_matches_programmatic(self, parsed_library_spec):
        parsed = parsed_library_spec.equality_rules()[0]
        programmatic = library_integration_spec().equality_rules()[0]
        assert parsed.local_class == programmatic.local_class
        assert parsed.remote_class == programmatic.remote_class
        assert parsed.condition == programmatic.condition

    def test_descriptivity_rule(self, parsed_library_spec):
        rule = parsed_library_spec.descriptivity_rules()[0]
        assert rule.source_class == "Publisher"
        assert rule.target_class == "Publication"
        assert rule.value_attribute == "publisher"
        assert rule.object_attribute == "name"
        assert rule.source_side is Side.REMOTE

    def test_local_side_similarity(self, parsed_library_spec):
        local_rules = [
            r
            for r in parsed_library_spec.similarity_rules()
            if r.source_side is Side.LOCAL
        ]
        assert len(local_rules) == 1
        assert local_rules[0].source_class == "ScientificPubl"

    def test_propeqs_match_programmatic(self, parsed_library_spec):
        programmatic = library_integration_spec()
        assert len(parsed_library_spec.propeqs) == len(programmatic.propeqs)
        by_name = {p.conformed_name: p for p in parsed_library_spec.propeqs}
        rating = by_name["rating"]
        assert rating.local_cf.name == "multiply(2)"
        assert rating.df.category is DecisionCategory.ELIMINATING
        libprice = by_name["libprice"]
        assert libprice.df.category is DecisionCategory.AVOIDING
        assert libprice.df.trusted is Side.LOCAL

    def test_declarations_and_virtual_names(self, parsed_library_spec):
        assert "CSLibrary.Publication.cc2" in parsed_library_spec.declared_subjective
        key = frozenset(("Proceedings", "RefereedPubl"))
        assert parsed_library_spec.virtual_class_names[key] == "RefereedProceedings"

    def test_parsed_spec_validates(self, parsed_library_spec):
        assert parsed_library_spec.validate() == []

    def test_parsed_spec_produces_paper_derivation(self, parsed_library_spec):
        """The textual spec drives the whole pipeline to the same result."""
        result = IntegrationWorkbench(parsed_library_spec).run()
        formulas = result.derivation.formulas_for_scope(
            "CSLibrary.RefereedPubl ⋈ Bookseller.Proceedings"
        )
        assert parse_expression(
            "publisher.name = 'ACM' implies rating >= 5"
        ) in formulas

    def test_personnel_spec_source(self):
        spec = parse_specification(
            PERSONNEL_SPEC_SOURCE, personnel_db1_schema(), personnel_db2_schema()
        )
        assert spec.validate() == []
        result = IntegrationWorkbench(spec).run()
        formulas = result.derivation.formulas_for_scope(
            "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        )
        assert parse_expression("trav_reimb in {12, 17, 22}") in formulas


class TestSpecParserErrors:
    def _parse(self, text):
        return parse_specification(text, cslibrary_schema(), bookseller_schema())

    def test_unknown_statement(self):
        with pytest.raises(ParseError, match="unrecognised"):
            self._parse("frobnicate everything")

    def test_malformed_eq(self):
        with pytest.raises(ParseError, match="malformed Eq"):
            self._parse("Eq(Publication) <- x = y")

    def test_eq_requires_both_sides(self):
        with pytest.raises(ParseError, match="local .* remote"):
            self._parse("Eq(O:Publication, O:Item) <- O.isbn = O.isbn")

    def test_unknown_decision_function(self):
        with pytest.raises(ParseError, match="unknown decision function"):
            self._parse(
                "propeq(Publication.title, Item.title, id, id, median)"
            )

    def test_trust_must_name_a_component(self):
        with pytest.raises(ParseError, match="names neither"):
            self._parse(
                "propeq(Publication.title, Item.title, id, id, trust(Ghost))"
            )

    def test_unknown_conversion(self):
        with pytest.raises(ParseError, match="unknown conversion"):
            self._parse(
                "propeq(Publication.title, Item.title, rot13, id, any)"
            )

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            self._parse("# comment\n\nnonsense here")
        assert excinfo.value.line == 3

    def test_comments_and_blanks_ignored(self):
        spec = self._parse("# just a comment\n\n")
        assert spec.rules == []


class TestCLI:
    def test_demo_command(self, capsys):
        from repro.cli import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "DATABASE INTEROPERATION REPORT" in out

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        local = tmp_path / "library.tm"
        remote = tmp_path / "bookseller.tm"
        spec = tmp_path / "integration.spec"
        local.write_text(cslibrary_source())
        remote.write_text(bookseller_source())
        spec.write_text(LIBRARY_SPEC_SOURCE)
        assert main(
            ["report", "--local", str(local), "--remote", str(remote), "--spec", str(spec)]
        ) == 0
        out = capsys.readouterr().out
        assert "publisher.name = 'ACM' implies rating >= 5" in out

    def test_validate_flags_inconsistency(self, tmp_path, capsys):
        from repro.cli import main

        local = tmp_path / "library.tm"
        remote = tmp_path / "bookseller.tm"
        spec = tmp_path / "integration.spec"
        local.write_text(cslibrary_source())
        remote.write_text(bookseller_source())
        # The paper spec has similarity conflicts → validate fails.
        spec.write_text(LIBRARY_SPEC_SOURCE)
        assert main(
            ["validate", "--local", str(local), "--remote", str(remote), "--spec", str(spec)]
        ) == 1

    def test_validate_accepts_consistent_spec(self, tmp_path, capsys):
        from repro.cli import main
        from repro.fixtures import personnel_db1_source, personnel_db2_source

        local = tmp_path / "db1.tm"
        remote = tmp_path / "db2.tm"
        spec = tmp_path / "integration.spec"
        local.write_text(personnel_db1_source())
        remote.write_text(personnel_db2_source())
        spec.write_text(PERSONNEL_SPEC_SOURCE)
        assert main(
            ["validate", "--local", str(local), "--remote", str(remote), "--spec", str(spec)]
        ) == 0
