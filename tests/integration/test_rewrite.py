"""Direct tests for the AST rewriting utilities behind conformation."""

import pytest

from repro.constraints import parse_expression, to_source
from repro.errors import ConformationError
from repro.integration._rewrite import (
    convert_domains,
    map_paths,
    rename_attributes,
)
from repro.integration.conversion import LinearConversion, MappingConversion


class TestRenameAttributes:
    def test_renames_first_segment_only(self):
        formula = parse_expression("ourprice <= shopprice")
        renamed = rename_attributes(formula, {"ourprice": "libprice"})
        assert renamed == parse_expression("libprice <= shopprice")

    def test_dotted_paths_keep_tail(self):
        formula = parse_expression("publisher.name = 'ACM'")
        renamed = rename_attributes(formula, {"publisher": "vendor"})
        assert renamed == parse_expression("vendor.name = 'ACM'")

    def test_key_constraints_renamed(self):
        formula = parse_expression("key isbn")
        renamed = rename_attributes(formula, {"isbn": "code"})
        assert to_source(renamed) == "key code"

    def test_aggregate_over_renamed(self):
        formula = parse_expression(
            "(sum (collect x for x in self) over ourprice) < MAX"
        )
        renamed = rename_attributes(formula, {"ourprice": "libprice"})
        assert "over libprice" in to_source(renamed)

    def test_connectives_traversed(self):
        formula = parse_expression("a = 1 and (b = 2 or not c.d = 3)")
        renamed = rename_attributes(formula, {"a": "x", "c": "y"})
        assert renamed == parse_expression("x = 1 and (b = 2 or not y.d = 3)")

    def test_quantified_bodies_traversed(self):
        formula = parse_expression("forall p in Publisher | p.name = q")
        renamed = rename_attributes(formula, {"q": "r"})
        assert renamed == parse_expression("forall p in Publisher | p.name = r")


class TestConvertDomains:
    def test_comparison_constant_converted(self):
        formula = parse_expression("rating >= 2")
        converted = convert_domains(formula, {"rating": LinearConversion(2)})
        assert converted == parse_expression("rating >= 4")

    def test_negative_factor_flips_operator(self):
        formula = parse_expression("score <= 3")
        converted = convert_domains(formula, {"score": LinearConversion(-1)})
        assert converted == parse_expression("score >= -3")

    def test_membership_values_converted(self):
        formula = parse_expression("rating in {1, 2}")
        converted = convert_domains(formula, {"rating": LinearConversion(2)})
        assert converted == parse_expression("rating in {2, 4}")

    def test_constant_on_left_mirrored(self):
        formula = parse_expression("2 <= rating")
        converted = convert_domains(formula, {"rating": LinearConversion(2)})
        assert converted == parse_expression("rating >= 4")

    def test_equality_both_sides_converted_same(self):
        formula = parse_expression("rating = other")
        converted = convert_domains(
            formula,
            {"rating": LinearConversion(2), "other": LinearConversion(2)},
        )
        assert converted == formula  # same conversion: relation preserved

    def test_differently_converted_sides_rejected(self):
        formula = parse_expression("rating = other")
        with pytest.raises(ConformationError):
            convert_domains(
                formula,
                {"rating": LinearConversion(2), "other": LinearConversion(3)},
            )

    def test_dotted_converted_path_rejected(self):
        formula = parse_expression("rating.sub = 1")
        with pytest.raises(ConformationError):
            convert_domains(formula, {"rating": LinearConversion(2)})

    def test_membership_in_named_constant_rejected(self):
        formula = parse_expression("rating in RATINGS")
        with pytest.raises(ConformationError):
            convert_domains(formula, {"rating": LinearConversion(2)})

    def test_mapping_conversion_of_equality(self):
        formula = parse_expression("grade = 'A'")
        converted = convert_domains(
            formula, {"grade": MappingConversion({"A": 1, "B": 2})}
        )
        assert converted == parse_expression("grade = 1")

    def test_mapping_rejects_order(self):
        formula = parse_expression("grade < 'B'")
        with pytest.raises(ConformationError):
            convert_domains(formula, {"grade": MappingConversion({"A": 1, "B": 2})})

    def test_implication_sides_converted(self):
        formula = parse_expression("ref? = true implies rating >= 7")
        converted = convert_domains(formula, {"rating": LinearConversion(2)})
        assert converted == parse_expression("ref? = true implies rating >= 14")


class TestMapPaths:
    def test_identity(self):
        formula = parse_expression("a.b = 1 and contains(c, 'x')")
        assert map_paths(formula, lambda p: p) == formula

    def test_prefixing(self):
        from repro.constraints.ast import Path

        formula = parse_expression("rating >= 4")
        prefixed = map_paths(formula, lambda p: p.with_root("O'"))
        assert prefixed == parse_expression("O'.rating >= 4")

    def test_function_arguments_mapped(self):
        from repro.constraints.ast import Path

        formula = parse_expression("contains(title, 'Proceed')")
        mapped = map_paths(formula, lambda p: p.with_root("O"))
        assert mapped == parse_expression("contains(O.title, 'Proceed')")
