"""Tests for global-constraint derivation (Section 5.2) — the paper's
central results."""

import pytest

from repro.constraints import Solver, parse_expression, to_source
from repro.fixtures import (
    library_integration_spec,
    personnel_integration_spec,
)
from repro.integration import ComparisonRule, PropertyEquivalence, Average, Maximum
from repro.integration.conformation import conform
from repro.integration.derivation import ConstraintDeriver
from repro.integration.relationships import Side
from repro.integration.rule_checks import check_rules
from repro.integration.subjectivity import analyse_subjectivity


def derive(spec):
    conformation = conform(spec)
    analysis = analyse_subjectivity(spec)
    rule_checks = check_rules(spec, conformation)
    deriver = ConstraintDeriver(spec, conformation, analysis, rule_checks)
    return deriver.run()


@pytest.fixture(scope="module")
def personnel_result():
    return derive(personnel_integration_spec())


@pytest.fixture(scope="module")
def library_result():
    return derive(library_integration_spec())


class TestIntroExample:
    """The paper's introduction example, end to end."""

    def test_trav_reimb_derivation(self, personnel_result):
        """'we can derive a global constraint (1) trav-reimb ∈ {12,17,22};
        the apparent conflict has been solved by the way the global values
        are defined.'"""
        scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        formulas = personnel_result.formulas_for_scope(scope)
        assert parse_expression("trav_reimb in {12, 17, 22}") in formulas

    def test_salary_rule_not_propagated(self, personnel_result):
        """'constraint (2) of DB1 is not necessarily a valid constraint for
        DBint' — declared subjective, so it must not appear globally."""
        scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        formulas = personnel_result.formulas_for_scope(scope)
        assert parse_expression("salary < 1500") not in formulas
        assert any("oc2" in note and "declaration" in note for note in personnel_result.notes)

    def test_no_explicit_conflict(self, personnel_result):
        """The apparent {10,20} vs {14,24} conflict dissolves: both are
        subjective, so neither enters the objective union."""
        assert personnel_result.explicit_conflicts == []

    def test_ssn_constraints_union(self, personnel_result):
        # key constraints are class constraints — not part of object-level
        # integration; no objective object constraints exist here at all.
        scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        objective = [
            c
            for c in personnel_result.for_scope(scope)
            if c.origin == "objective-union"
        ]
        assert objective == []


class TestACMExample:
    """Section 5.2.1's object-equality derivation."""

    def test_acm_rating_derivation(self, library_result):
        """'The global object constraint publisher.name='ACM' implies
        rating >= 5 can be derived.'

        The paper pairs 'a local object O:ScientificPubl' carrying the
        conformed constraint rating >= 4 with a remote Proceedings; in the
        Figure 1 schema that constraint is RefereedPubl's oc1, so the
        derivation surfaces on the RefereedPubl ⋈ Proceedings pair."""
        scope = "CSLibrary.RefereedPubl ⋈ Bookseller.Proceedings"
        formulas = library_result.formulas_for_scope(scope)
        expected = parse_expression("publisher.name = 'ACM' implies rating >= 5")
        assert expected in formulas, [to_source(f) for f in formulas]

    def test_price_constraints_not_derived(self, library_result):
        """'The conflict avoiding decision functions on shopprice and
        libprice render both of these constraints subjective, and no global
        object constraints can be derived from them.'"""
        for scope_constraints in library_result.constraints:
            if scope_constraints.origin != "derived":
                continue
            paths = to_source(scope_constraints.formula)
            assert "libprice" not in paths
            assert "shopprice" not in paths
        assert any("condition (1)" in note for note in library_result.notes)

    def test_objective_constraints_union(self, library_result):
        """Objective constraints (e.g. Proceedings.oc1) enter the global set."""
        scope = "CSLibrary.ScientificPubl ⋈ Bookseller.Proceedings"
        union = [
            c
            for c in library_result.for_scope(scope)
            if c.origin == "objective-union"
        ]
        formulas = [c.formula for c in union]
        assert parse_expression(
            "publisher.name = 'IEEE' implies ref? = true"
        ) in formulas

    def test_implicit_conflict_risk_on_publisher(self, library_result):
        """oc2 (name in KNOWNPUBLISHERS) is objective over the
        conflict-ignored publisher name; the bookseller has no equivalent
        constraint → implicit conflict risk (Section 5.2.1)."""
        assert any(
            "oc2" in risk.constraint_name
            for risk in library_result.implicit_risks
        )

    def test_derivations_are_sound_for_merged_state(self, library_result):
        """Every derived constraint on the ScientificPubl⋈Proceedings scope
        admits the actual merged VLDB'95 state (rating 8, ACM)."""
        from repro.constraints.evaluate import EvalContext, evaluate

        scope = "CSLibrary.ScientificPubl ⋈ Bookseller.Proceedings"
        state = {
            "rating": 8,
            "ref?": True,
            "publisher": {"name": "ACM"},
            "libprice": 90.0,
            "shopprice": 99.0,
        }
        for constraint in library_result.for_scope(scope):
            if constraint.origin != "derived":
                continue
            assert evaluate(
                constraint.formula, EvalContext(current=state)
            ), to_source(constraint.formula)


class TestStrictSimilarity:
    def test_refereed_rule_is_consistent(self, library_result):
        """Section 5.2.1: rating >= 7 (derived) entails the conformed
        rating >= 4 — O' is a valid RefereedPubl."""
        conflicts = [
            c
            for c in library_result.similarity_conflicts
            if c.rule.target_class == "RefereedPubl"
        ]
        assert conflicts == []
        assert any(
            "Ω' ⊨ Ω" in note or "valid RefereedPubl" in note
            for note in library_result.notes
        )

    def test_weakened_oc2_creates_conflict(self):
        """The paper's counterfactual: if oc2 were ref?=true implies
        rating >= 3, the derived constraint no longer entails rating >= 4
        and the comparison rule must be changed."""
        spec = library_integration_spec()
        proceedings = spec.remote_schema.class_named("Proceedings")
        oc2 = next(c for c in proceedings.constraints if c.name == "oc2")
        weakened = oc2.with_formula(
            parse_expression("ref? = true implies rating >= 3")
        )
        proceedings.constraints[proceedings.constraints.index(oc2)] = weakened
        result = derive(spec)
        conflicts = [
            c
            for c in result.similarity_conflicts
            if c.rule.target_class == "RefereedPubl"
        ]
        assert len(conflicts) == 1
        unmet = {to_source(c.formula) for c in conflicts[0].unmet}
        assert "rating >= 4" in unmet

    def test_nonrefereed_rule_conflicts(self, library_result):
        """Sim(Proceedings, NonRefereedPubl) <- ref?=false does not bound the
        rating: NonRefereedPubl's conformed oc1 (rating <= 6) is not
        entailed — a conflict the workbench should repair."""
        conflicts = [
            c
            for c in library_result.similarity_conflicts
            if c.rule.target_class == "NonRefereedPubl"
        ]
        assert len(conflicts) == 1
        unmet = {to_source(c.formula) for c in conflicts[0].unmet}
        assert "rating <= 6" in unmet

    def test_declared_subjective_target_constraints_ignored(self):
        """Marking NonRefereedPubl.oc1 subjective removes the conflict."""
        spec = library_integration_spec()
        spec.declare_subjective("CSLibrary.NonRefereedPubl.oc1")
        result = derive(spec)
        conflicts = [
            c
            for c in result.similarity_conflicts
            if c.rule.target_class == "NonRefereedPubl"
        ]
        assert conflicts == []


class TestApproximateSimilarity:
    def test_cv_receives_disjunction(self):
        spec = library_integration_spec()
        spec.add_rule(
            ComparisonRule.approximate_similarity(
                "Monograph", "ProfessionalPubl", "TradeBook"
            )
        )
        result = derive(spec)
        cv = result.for_scope("TradeBook")
        assert len(cv) == 1
        assert cv[0].origin == "cv-disjunction"

    def test_fragmentation_detection(self):
        """Disjoint membership conditions flag horizontal fragmentation."""
        spec = personnel_integration_spec()
        local = spec.local_schema.class_named("Employee")
        remote = spec.remote_schema.class_named("Employee")
        from repro.constraints.model import Constraint, ConstraintKind

        local.add_constraint(
            Constraint(
                "oc9",
                ConstraintKind.OBJECT,
                parse_expression("salary < 1000"),
                database="PersonnelDB1",
            )
        )
        remote.add_constraint(
            Constraint(
                "oc9",
                ConstraintKind.OBJECT,
                parse_expression("salary >= 1000"),
                database="PersonnelDB2",
            )
        )
        spec.add_rule(
            ComparisonRule.approximate_similarity(
                "Employee", "Employee", "AnyStaff"
            )
        )
        result = derive(spec)
        assert any("AnyStaff" in f for f in result.fragmentations)


class TestExplicitConflict:
    def test_objective_union_conflict_detected(self):
        """Two objective constraints that cannot hold together."""
        spec = personnel_integration_spec()
        from repro.constraints.model import Constraint, ConstraintKind

        spec.local_schema.class_named("Employee").add_constraint(
            Constraint(
                "oc8",
                ConstraintKind.OBJECT,
                parse_expression("ssn = 'FIXED'"),
                database="PersonnelDB1",
            )
        )
        spec.remote_schema.class_named("Employee").add_constraint(
            Constraint(
                "oc8",
                ConstraintKind.OBJECT,
                parse_expression("ssn != 'FIXED'"),
                database="PersonnelDB2",
            )
        )
        result = derive(spec)
        assert len(result.explicit_conflicts) == 1
        names = result.explicit_conflicts[0].constraint_names
        assert "PersonnelDB1.Employee.oc8" in names
        assert "PersonnelDB2.Employee.oc8" in names


class TestSettlingFunctions:
    def test_settling_requires_matching_remote_constraint(self):
        """Condition (2): with max as df, a one-sided constraint does not
        derive."""
        spec = personnel_integration_spec()
        spec.propeqs[1] = PropertyEquivalence(
            "Employee", "trav_reimb", "Employee", "trav_reimb", df=Maximum()
        )
        # Remove the remote constraint so only DB1 constrains trav_reimb.
        remote = spec.remote_schema.class_named("Employee")
        remote.constraints[:] = [c for c in remote.constraints if c.name != "oc1"]
        result = derive(spec)
        scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        derived = [
            c for c in result.for_scope(scope) if c.origin == "derived"
        ]
        assert derived == []
        assert any("condition (2)" in note for note in result.notes)

    def test_settling_with_matching_constraints_derives(self):
        """max over {10,20} and {14,24} gives {14, 20, 24}."""
        spec = personnel_integration_spec()
        spec.propeqs[1] = PropertyEquivalence(
            "Employee", "trav_reimb", "Employee", "trav_reimb", df=Maximum()
        )
        result = derive(spec)
        scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
        formulas = result.formulas_for_scope(scope)
        assert parse_expression("trav_reimb in {14, 20, 24}") in formulas


class TestIdenticalPairDerivation:
    def test_price_invariant_derives_under_avg(self):
        """Had the example used avg for both prices, the identical
        libprice <= shopprice constraints WOULD derive globally (monotone
        combinator) — contrast with the paper's trust case."""
        spec = library_integration_spec()
        spec.propeqs[0] = PropertyEquivalence(
            "Publication", "ourprice", "Item", "libprice",
            df=Average(),
            conformed_name="libprice",
        )
        spec.propeqs[1] = PropertyEquivalence(
            "Publication", "shopprice", "Item", "shopprice", df=Average()
        )
        result = derive(spec)
        scope = "CSLibrary.Publication ⋈ Bookseller.Item"
        formulas = result.formulas_for_scope(scope)
        assert parse_expression("libprice <= shopprice") in formulas
