"""Tests for the two uses of global constraints the paper's introduction
motivates: query optimisation and update validation."""

import pytest

from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.constraints import parse_expression, to_source
from repro.integration import IntegrationWorkbench
from repro.integration.optimizer import GlobalQueryOptimizer
from repro.integration.updates import GlobalUpdateValidator


@pytest.fixture(scope="module")
def library_result():
    spec = library_integration_spec()
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()
    return IntegrationWorkbench(spec, local_store, remote_store).run()


@pytest.fixture(scope="module")
def optimizer(library_result):
    return GlobalQueryOptimizer(library_result)


@pytest.fixture(scope="module")
def personnel_result():
    spec = personnel_integration_spec()
    db1, db2, _ = personnel_stores()
    return IntegrationWorkbench(spec, db1, db2).run()


class TestQueryOptimization:
    def test_pruned_by_derived_constraint(self, optimizer):
        """ACM proceedings with rating < 5 cannot exist: the derived
        constraint publisher.name='ACM' implies rating >= 5 refutes the
        query — 'eliminating subqueries which are known to yield empty
        results'."""
        decision = optimizer.analyse(
            "CSLibrary.RefereedPubl",
            "publisher.name = 'ACM' and rating < 5",
        )
        assert decision.empty
        assert decision.reasons  # names the refuting constraints

    def test_satisfiable_query_not_pruned(self, optimizer):
        decision = optimizer.analyse(
            "CSLibrary.RefereedPubl", "publisher.name = 'ACM' and rating >= 6"
        )
        assert not decision.empty

    def test_execute_short_circuits(self, optimizer):
        results = optimizer.execute(
            "CSLibrary.RefereedPubl", "publisher.name = 'ACM' and rating < 5"
        )
        assert results == []

    def test_execute_returns_real_objects(self, optimizer):
        results = optimizer.execute("CSLibrary.RefereedPubl", "rating >= 8")
        isbns = {obj.state["isbn"] for obj in results}
        assert "ISBN-001" in isbns

    def test_optimizer_agrees_with_evaluation(self, optimizer, library_result):
        """Pruning must never lose answers: compare against brute-force."""
        view = library_result.view
        for predicate in (
            "rating >= 9",
            "publisher.name = 'ACM' and rating < 5",
            "ref? = true and rating < 7",
            "rating in {8, 9, 10}",
        ):
            optimised = optimizer.execute("CSLibrary.RefereedPubl", predicate)
            brute = view.select("CSLibrary.RefereedPubl", predicate)
            assert {o.oid for o in optimised} == {o.oid for o in brute}, predicate

    def test_simplify_drops_refuted_disjunct(self, optimizer):
        simplified = optimizer.simplify(
            "CSLibrary.RefereedPubl",
            "(publisher.name = 'ACM' and rating < 5) or rating >= 9",
        )
        assert to_source(simplified) == "rating >= 9"

    def test_simplify_keeps_satisfiable_disjuncts(self, optimizer):
        predicate = "rating >= 9 or rating <= 5"
        simplified = optimizer.simplify("CSLibrary.RefereedPubl", predicate)
        assert simplified == parse_expression(predicate)

    def test_unconstrained_class_passthrough(self, optimizer):
        decision = optimizer.analyse("CSLibrary.ProfessionalPubl", "title = 'x'")
        assert not decision.empty

    def test_personnel_membership_pruning(self, personnel_result):
        """Derived trav_reimb ∈ {12,17,22} prunes a query for 15."""
        optimizer = GlobalQueryOptimizer(personnel_result)
        decision = optimizer.analyse(
            "PersonnelDB1.Employee", "trav_reimb = 15"
        )
        assert decision.empty

    def test_requires_workbench_output(self):
        from repro.integration.workbench import IntegrationResult

        empty = IntegrationResult(library_integration_spec())
        with pytest.raises(ValueError):
            GlobalQueryOptimizer(empty)


class TestUpdateValidation:
    def test_valid_update_accepted(self, library_result):
        validator = GlobalUpdateValidator(library_result)
        vldb = next(
            obj
            for obj in library_result.view.merged_objects()
            if obj.state.get("isbn") == "ISBN-001"
        )
        verdict = validator.validate(vldb.oid, rating=9)
        assert verdict.accepted

    def test_update_rejected_by_global_constraint(self, library_result):
        """Dropping the VLDB proceedings' rating to 4 violates the derived
        constraint through oc2/oc3 — rejected before any subtransaction."""
        validator = GlobalUpdateValidator(library_result)
        vldb = next(
            obj
            for obj in library_result.view.merged_objects()
            if obj.state.get("isbn") == "ISBN-001"
        )
        verdict = validator.validate(vldb.oid, rating=4)
        assert not verdict.accepted
        assert any(r.level in ("global", "Bookseller") for r in verdict.rejections)

    def test_rejection_names_component(self, library_result):
        """A price flip would be rejected by the bookseller's manager
        (its conformed oc1 libprice <= shopprice)."""
        validator = GlobalUpdateValidator(library_result)
        vldb = next(
            obj
            for obj in library_result.view.merged_objects()
            if obj.state.get("isbn") == "ISBN-001"
        )
        verdict = validator.validate(vldb.oid, libprice=150.0)
        assert not verdict.accepted
        components = {r.level for r in verdict.rejections}
        assert "Bookseller" in components or "CSLibrary" in components

    def test_verdict_describe(self, library_result):
        validator = GlobalUpdateValidator(library_result)
        vldb = next(
            obj
            for obj in library_result.view.merged_objects()
            if obj.state.get("isbn") == "ISBN-001"
        )
        accepted = validator.validate(vldb.oid, rating=9)
        assert "accepted" in accepted.describe()
        rejected = validator.validate(vldb.oid, libprice=150.0)
        assert "rejected" in rejected.describe()

    def test_personnel_reimbursement_update(self, personnel_result):
        validator = GlobalUpdateValidator(personnel_result)
        bob = personnel_result.view.merged_objects()[0]
        good = validator.validate(bob.oid, trav_reimb=22)
        assert good.accepted
        bad = validator.validate(bob.oid, trav_reimb=99)
        assert not bad.accepted
