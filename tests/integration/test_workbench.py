"""End-to-end tests for the workbench (Figure 3) and the report renderer,
including the Section 5.1.3 price example."""

import pytest

from repro.constraints import parse_expression
from repro.engine import ObjectStore
from repro.fixtures import (
    bookseller_schema,
    bookseller_store,
    cslibrary_schema,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration import IntegrationWorkbench
from repro.integration.report import render_report


@pytest.fixture(scope="module")
def library_result():
    spec = library_integration_spec()
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()
    return IntegrationWorkbench(spec, local_store, remote_store).run()


@pytest.fixture(scope="module")
def personnel_result():
    spec = personnel_integration_spec()
    db1, db2, _ = personnel_stores()
    return IntegrationWorkbench(spec, db1, db2).run()


class TestPipeline:
    def test_all_stages_ran(self, library_result):
        assert library_result.subjectivity is not None
        assert library_result.conformation is not None
        assert library_result.rule_checks is not None
        assert library_result.view is not None
        assert library_result.hierarchy is not None
        assert library_result.derivation is not None
        assert library_result.class_constraints is not None
        assert library_result.database_constraints is not None

    def test_spec_structurally_valid(self, library_result):
        assert library_result.spec_issues == []

    def test_global_constraints_collected(self, library_result):
        formulas = [c.formula for c in library_result.global_constraints]
        assert parse_expression(
            "publisher.name = 'ACM' implies rating >= 5"
        ) in formulas

    def test_key_constraint_propagates(self, library_result):
        """The isbn keys survive: the only equality rule is key-to-key and
        similarity sources (Proceedings, ScientificPubl) are covered by it."""
        assert library_result.class_constraints is not None
        origins = {
            (c.origin, c.scope)
            for c in library_result.class_constraints.propagated
        }
        assert ("key-propagation", "CSLibrary.Publication") in origins
        assert ("key-propagation", "Bookseller.Item") in origins

    def test_objective_extension_classes(self, library_result):
        """ProfessionalPubl (local) and Publisher (remote) extents cannot
        change: their class constraints stay valid."""
        from repro.integration.relationships import Side

        report = library_result.class_constraints
        assert "ProfessionalPubl" in report.objective_extension[Side.LOCAL]
        assert "Publisher" in report.objective_extension[Side.REMOTE]
        assert "Publication" not in report.objective_extension[Side.LOCAL]

    def test_subjective_class_constraints_retained_locally(self, library_result):
        retained = dict(library_result.class_constraints.retained_locally)
        assert "CSLibrary.ScientificPubl.cc1" in retained
        assert "CSLibrary.Publication.cc2" in retained

    def test_database_constraint_stays_local(self, library_result):
        retained = dict(library_result.database_constraints.retained_locally)
        assert "Bookseller.db1" in retained
        assert "5.2.3" in retained["Bookseller.db1"]

    def test_similarity_conflict_produces_repair(self, library_result):
        """The NonRefereedPubl rule conflict yields an option-2 repair whose
        strengthened condition bounds the rating."""
        repairs = {
            s.target: s
            for s in library_result.suggestions
            if s.action == "repair-rule"
        }
        nonrefereed = repairs["Sim(Proceedings, NonRefereedPubl)"]
        repaired = nonrefereed.repaired_rule
        assert repaired is not None
        assert repaired.condition == parse_expression(
            "O'.ref? = false and O'.rating <= 6"
        )
        assert nonrefereed.fallback_rule is not None

    def test_scientificpubl_to_proceedings_conflict_found(self, library_result):
        """The local→remote similarity rule cannot guarantee the
        Proceedings invariants (a library publication carries no ref?
        attribute), which the analysis legitimately flags."""
        conflicts = {
            c.rule.target_class
            for c in library_result.derivation.similarity_conflicts
        }
        assert "Proceedings" in conflicts

    def test_implicit_risk_suggestions(self, library_result):
        options = {s.option for s in library_result.suggestions}
        assert 3 in options  # change-decision-function for the `any` risk

    def test_no_state_violations_in_paper_scenario(self, library_result):
        assert library_result.state_violations == []


class TestPersonnelPipeline:
    def test_consistent_after_subjective_declaration(self, personnel_result):
        assert personnel_result.derivation is not None
        assert personnel_result.derivation.explicit_conflicts == []
        assert personnel_result.state_violations == []

    def test_merged_bob_satisfies_derived_constraint(self, personnel_result):
        """The derived trav_reimb ∈ {12,17,22} holds on the merged state
        (avg(20, 14) = 17)."""
        view = personnel_result.view
        bob = view.merged_objects()[0]
        derived = parse_expression("trav_reimb in {12, 17, 22}")
        assert view.satisfies(bob, derived) is True


class TestSection513PriceExample:
    """The (26, 29) / (22, 25) example: trust functions make the price
    invariant subjective; the merged state (26, 25) violates the local
    formula, which is exactly why it must not be integrated."""

    @pytest.fixture()
    def price_result(self):
        local_store = ObjectStore(cslibrary_schema())
        remote_store = ObjectStore(bookseller_schema())
        local_store.insert(
            "Publication",
            title="Price Example",
            isbn="ISBN-900",
            publisher="ACM",
            shopprice=29.0,
            ourprice=26.0,
        )
        with remote_store.transaction():
            acm = remote_store.insert("Publisher", name="ACM", location="NY")
            remote_store.insert(
                "Monograph",
                title="Price Example",
                isbn="ISBN-900",
                publisher=acm,
                authors=frozenset(),
                shopprice=25.0,
                libprice=22.0,
                subjects=frozenset(),
            )
        spec = library_integration_spec()
        return IntegrationWorkbench(spec, local_store, remote_store).run()

    def test_merged_state_violates_local_invariant(self, price_result):
        view = price_result.view
        book = next(
            obj for obj in view.merged_objects() if obj.state.get("isbn") == "ISBN-900"
        )
        assert book.state["libprice"] == 26.0  # trust(CSLibrary)
        assert book.state["shopprice"] == 25.0  # trust(Bookseller)
        # The would-be constraint is falsified by the global state...
        assert view.satisfies(book, parse_expression("libprice <= shopprice")) is False

    def test_but_constraint_is_subjective_so_no_conflict(self, price_result):
        """...yet no violation is reported: value subjectivity forced the
        constraint to be subjective, so it is not part of the view."""
        formulas = [c.formula for c in price_result.global_constraints]
        assert parse_expression("libprice <= shopprice") not in formulas
        assert price_result.state_violations == []

    def test_declaring_it_objective_is_inconsistent(self):
        """(DB ⊨ φ ∧ DB' ⊨ φ) ⇏ global ⊨ φ — trying to keep φ objective
        violates the Section 5.1.3 consistency rule."""
        spec = library_integration_spec()
        spec.declare_objective("CSLibrary.Publication.oc1")
        result = IntegrationWorkbench(spec).run()
        assert result.subjectivity is not None
        assert any(
            "Publication.oc1" in v for v in result.subjectivity.violations
        )
        assert not result.is_consistent()


class TestComponentAudit:
    def test_clean_components_produce_no_violations(self, library_result):
        assert library_result.component_violations == {}

    def test_broken_component_is_reported_and_counted(self):
        from repro.engine import ObjectStore
        from repro.fixtures import (
            bookseller_store,
            cslibrary_schema,
            library_integration_spec,
        )

        local_store = ObjectStore(cslibrary_schema(), enforce=False)
        local_store.insert(
            "Publication",
            title="Bad",
            isbn="X",
            publisher="Basement Press",  # violates oc2
            shopprice=1.0,
            ourprice=2.0,  # violates oc1
        )
        remote_store, _ = bookseller_store()
        result = IntegrationWorkbench(
            library_integration_spec(), local_store, remote_store
        ).run()
        assert "local (CSLibrary)" in result.component_violations
        assert result.conflict_count() >= 2
        assert not result.is_consistent()
        text = render_report(result)
        assert "Component store violations" in text
        assert "local (CSLibrary)" in text


class TestReport:
    def test_report_renders_all_sections(self, library_result):
        text = render_report(library_result)
        for heading in (
            "DATABASE INTEROPERATION REPORT",
            "Constraint subjectivity",
            "Conformation",
            "Rule checks",
            "Integrated view",
            "Integrated constraints",
            "Class constraints",
            "Database constraints",
            "Suggestions",
            "Verdict",
        ):
            assert heading in text

    def test_report_shows_paper_derivation(self, library_result):
        text = render_report(library_result)
        assert "publisher.name = 'ACM' implies rating >= 5" in text

    def test_report_shows_virtual_class(self, library_result):
        text = render_report(library_result)
        assert "RefereedProceedings" in text

    def test_consistent_report_verdict(self, personnel_result):
        text = render_report(personnel_result)
        assert "consistent" in text

    def test_schema_only_run(self):
        """The workbench runs without instance stores (pure design-time)."""
        result = IntegrationWorkbench(library_integration_spec()).run()
        assert result.view is None
        assert result.derivation is not None
        text = render_report(result)
        assert "Integrated constraints" in text
