"""Static conflict warnings in the integration workbench: a merged schema
whose constraints are inconsistent is flagged *before any data exists*."""

from __future__ import annotations

from repro.fixtures import library_integration_spec
from repro.integration.report import render_report
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification
from repro.integration.workbench import IntegrationWorkbench
from repro.tm.parser import parse_database

LOCAL = """
Database Shop
Class Product
  attributes
    name : string
    price : real
  object constraints
    oc1 : price >= 100
end Product
"""

REMOTE = """
Database Outlet
Class Item
  attributes
    name : string
    price : real
  object constraints
    oc1 : price < 50
end Item
"""


def _spec() -> IntegrationSpecification:
    spec = IntegrationSpecification(parse_database(LOCAL), parse_database(REMOTE))
    spec.add_rule(
        ComparisonRule.equality("Product", "Item", "self.name = other.name")
    )
    return spec


class TestStaticWarnings:
    def test_data_free_inconsistency_is_reported(self):
        result = IntegrationWorkbench(_spec()).run()
        contradictions = [
            d for d in result.static_warnings if d.code == "contradiction"
        ]
        assert contradictions, "merged-schema contradiction not detected"
        message = contradictions[0].message
        assert "Shop.Product.oc1" in message
        assert "Outlet.Item.oc1" in message
        assert "before any data exists" in message

    def test_static_warnings_do_not_count_as_conflicts(self):
        # conflict_count() keeps its pre-analysis meaning: static warnings
        # are advisory.  (The same inconsistency typically *also* surfaces as
        # a derivation conflict, which does count — so only check that the
        # static diagnostics add nothing on top.)
        result = IntegrationWorkbench(_spec()).run()
        baseline = result.conflict_count()
        result.static_warnings = []
        assert result.conflict_count() == baseline

    def test_report_renders_a_static_analysis_section(self):
        result = IntegrationWorkbench(_spec()).run()
        report = render_report(result)
        assert "Static analysis" in report
        assert "before any instance exists" in report
        assert "Shop.Product.oc1" in report

    def test_consistent_paper_spec_stays_clean(self):
        result = IntegrationWorkbench(library_integration_spec()).run()
        assert [
            d for d in result.static_warnings if d.severity == "error"
        ] == []
        assert "Static analysis" not in render_report(result) or all(
            d.severity != "error" for d in result.static_warnings
        )

    def test_similarity_rule_also_pairs_constraints(self):
        spec = IntegrationSpecification(
            parse_database(LOCAL), parse_database(REMOTE)
        )
        spec.add_rule(
            ComparisonRule.similarity("Item", "Product", condition="true")
        )
        result = IntegrationWorkbench(spec).run()
        assert any(
            d.code == "contradiction" for d in result.static_warnings
        )
