"""Tests for the object store (repro.engine.store)."""

import pytest

from repro.engine import ObjectStore
from repro.errors import (
    ConstraintViolation,
    EngineError,
    TypeSystemError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.fixtures import (
    bookseller_schema,
    bookseller_store,
    cslibrary_schema,
    cslibrary_store,
)


@pytest.fixture()
def library():
    store, named = cslibrary_store()
    return store, named


@pytest.fixture()
def bookseller():
    store, named = bookseller_store()
    return store, named


class TestInsert:
    def test_insert_returns_object_with_oid(self, library):
        store, _ = library
        obj = store.insert(
            "Publication",
            title="New Book",
            isbn="ISBN-100",
            publisher="ACM",
            shopprice=20.0,
            ourprice=18.0,
        )
        assert obj.oid.startswith("Publication#")
        assert store.get(obj.oid) is obj

    def test_insert_unknown_class(self, library):
        store, _ = library
        with pytest.raises(UnknownClassError):
            store.insert("Ghost", x=1)

    def test_insert_missing_attribute(self, library):
        store, _ = library
        with pytest.raises(EngineError, match="missing attributes"):
            store.insert("Publication", title="t")

    def test_insert_extra_attribute(self, library):
        store, _ = library
        with pytest.raises(EngineError, match="no attributes"):
            store.insert(
                "Publication",
                title="t",
                isbn="i",
                publisher="ACM",
                shopprice=1.0,
                ourprice=1.0,
                bogus=1,
            )

    def test_insert_type_error(self, library):
        store, _ = library
        with pytest.raises(TypeSystemError):
            store.insert(
                "Publication",
                title="t",
                isbn="i",
                publisher="ACM",
                shopprice="not a number",
                ourprice=1.0,
            )

    def test_int_coerced_to_real(self, library):
        store, _ = library
        obj = store.insert(
            "Publication",
            title="t",
            isbn="ISBN-101",
            publisher="ACM",
            shopprice=20,
            ourprice=18,
        )
        assert obj.state["shopprice"] == 20.0

    def test_range_type_enforced(self, library):
        store, _ = library
        with pytest.raises(TypeSystemError):
            store.insert(
                "RefereedPubl",
                title="t",
                isbn="ISBN-102",
                publisher="ACM",
                shopprice=20.0,
                ourprice=18.0,
                editors=frozenset(),
                rating=7,  # outside 1..5
                avgAccRate=0.5,
            )


class TestReferences:
    def test_reference_stored_as_oid(self, bookseller):
        store, named = bookseller
        assert named["vldb95"].state["publisher"] == named["acm"].oid

    def test_reference_deref_in_get_attr(self, bookseller):
        store, named = bookseller
        publisher = store.get_attr(named["vldb95"], "publisher")
        assert publisher is named["acm"]
        assert store.get_attr(publisher, "name") == "ACM"

    def test_dangling_reference_rejected(self, bookseller):
        store, _ = bookseller
        with pytest.raises(EngineError, match="unknown object"):
            store.insert(
                "Monograph",
                title="t",
                isbn="ISBN-200",
                publisher="Publisher#999",
                authors=frozenset(),
                shopprice=10.0,
                libprice=9.0,
                subjects=frozenset(),
            )

    def test_reference_class_checked(self, bookseller):
        store, named = bookseller
        with pytest.raises(EngineError, match="not a Publisher"):
            store.insert(
                "Monograph",
                title="t",
                isbn="ISBN-201",
                publisher=named["tp_book"],  # a Monograph, not a Publisher
                authors=frozenset(),
                shopprice=10.0,
                libprice=9.0,
                subjects=frozenset(),
            )


class TestExtents:
    def test_deep_extent_includes_subclasses(self, library):
        store, _ = library
        deep = store.extent("Publication")
        assert len(deep) == 5  # every object in the fixture

    def test_shallow_extent(self, library):
        store, _ = library
        shallow = store.extent("Publication", deep=False)
        assert len(shallow) == 1  # only the newsletter

    def test_extent_of_leaf(self, library):
        store, _ = library
        assert len(store.extent("RefereedPubl")) == 2

    def test_unknown_extent(self, library):
        store, _ = library
        with pytest.raises(UnknownClassError):
            store.extent("Ghost")

    def test_len_and_contains(self, library):
        store, named = library
        assert len(store) == 5
        assert named["vldb95"].oid in store

    def test_get_unknown_oid(self, library):
        store, _ = library
        with pytest.raises(UnknownObjectError):
            store.get("Publication#999")


class TestUpdateDelete:
    def test_update_changes_state(self, library):
        store, named = library
        store.update(named["newsletter"], ourprice=6.0)
        assert named["newsletter"].state["ourprice"] == 6.0

    def test_update_unknown_attribute(self, library):
        store, named = library
        with pytest.raises(EngineError):
            store.update(named["newsletter"], bogus=1)

    def test_update_rolls_back_on_violation(self, library):
        store, named = library
        before = named["newsletter"].state["ourprice"]
        with pytest.raises(ConstraintViolation):
            # oc1: ourprice <= shopprice (shopprice is 10.0)
            store.update(named["newsletter"], ourprice=11.0)
        assert named["newsletter"].state["ourprice"] == before

    def test_delete(self, library):
        store, named = library
        store.delete(named["newsletter"])
        assert named["newsletter"].oid not in store

    def test_delete_guarded_by_database_constraint(self, bookseller):
        store, named = bookseller
        # Deleting the only ACM item would break db1 unless all ACM items go;
        # deleting one of two ACM items is fine.
        store.delete(named["readings"])
        with pytest.raises(ConstraintViolation):
            store.delete(named["vldb95"])  # last item referencing ACM


class TestCheckAll:
    def test_fixture_stores_are_clean(self, library, bookseller):
        assert library[0].check_all() == []
        assert bookseller[0].check_all() == []

    def test_check_all_reports_when_unenforced(self):
        store = ObjectStore(cslibrary_schema(), enforce=False)
        store.insert(
            "Publication",
            title="Bad",
            isbn="ISBN-1",
            publisher="Nobody",  # violates oc2
            shopprice=5.0,
            ourprice=9.0,  # violates oc1
        )
        violations = store.check_all()
        assert len(violations) == 2
        assert any("oc1" in v for v in violations)
        assert any("oc2" in v for v in violations)
