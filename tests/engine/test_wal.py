"""Durability tests: write-ahead logging, snapshot checkpoints, and crash
recovery.

The central invariant (the paper's durable-component assumption): whatever
prefix of the log survives a crash, ``ObjectStore.open`` recovers *exactly a
prefix of the committed history* — never an aborted or uncommitted write,
never a constraint-violating state — with the maintained indexes rebuilt
consistent with the recovered contents.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ObjectStore, WriteAheadLog
from repro.engine.wal import (
    decode_state,
    encode_state,
    load_image,
    scan_log,
)
from repro.errors import ConstraintViolation, EngineError
from repro.tm import parse_database

SCHEMA_SOURCE = """
Database WalDB

Class Item
attributes
  name  : string
  price : real
object constraints
  oc1: price >= 0
class constraints
  cc1: key name
end Item

Class Order
attributes
  item : Item
  qty  : int
object constraints
  oc2: qty >= 1
end Order

Database constraints
  db1: forall i in Item exists o in Order | o.item = i
"""


def fresh_schema():
    return parse_database(SCHEMA_SOURCE)


def store_state(store):
    """Comparable image of a store's contents."""
    return {
        obj.oid: (obj.class_name, dict(obj.state)) for obj in store.objects()
    }


def insert_pair(store, name, price=10.0, qty=1):
    """Insert an Item plus the Order that satisfies db1, transactionally."""
    with store.transaction():
        item = store.insert("Item", name=name, price=price)
        order = store.insert("Order", item=item, qty=qty)
    return item, order


def truncated_copy(source: Path, target: Path, wal_bytes: bytes) -> Path:
    """A durable directory with the same snapshot but a cut-down log."""
    target.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(source / "snapshot.json", target / "snapshot.json")
    (target / "wal.jsonl").write_bytes(wal_bytes)
    return target


class TestCodecAndFraming:
    def test_state_roundtrip_preserves_value_kinds(self):
        state = {
            "s": "text",
            "i": 3,
            "f": 2.5,
            "b": True,
            "set": frozenset({"a", "b"}),
            "nested": frozenset({frozenset({"x"}), frozenset()}),
        }
        decoded = decode_state(encode_state(state))
        assert decoded == state
        assert isinstance(decoded["set"], frozenset)
        assert isinstance(decoded["i"], int) and not isinstance(decoded["b"], int) or decoded["b"] is True

    def test_unserializable_value_is_rejected(self):
        with pytest.raises(EngineError, match="cannot serialize"):
            encode_state({"x": object()})

    def test_scan_stops_at_corrupt_line_keeping_prefix(self, tmp_path):
        store = ObjectStore.open(tmp_path / "db", schema=fresh_schema())
        insert_pair(store, "n1")
        store.close()
        data = (tmp_path / "db" / "wal.jsonl").read_bytes()
        records, valid, torn = scan_log(data)
        assert not torn and valid == len(data) and len(records) == 4
        # Flip one byte in the last record's payload: CRC catches it.
        broken = data[:-3] + bytes([data[-3] ^ 0xFF]) + data[-2:]
        records2, valid2, torn2 = scan_log(broken)
        assert torn2 and len(records2) == len(records) - 1
        assert valid2 < len(broken)


class TestDurabilityRoundtrip:
    def test_recovery_restores_contents_counter_and_indexes(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        item, order = insert_pair(store, "book", price=12.5)
        store.update(order, qty=3)
        item2, _ = insert_pair(store, "cd")
        with store.transaction():
            for other in store.extent("Order"):
                if other.state["item"] == item2.oid:
                    store.delete(other)
            store.delete(item2)
        store.close()

        recovered = ObjectStore.open(path)
        assert store_state(recovered) == store_state(store)
        assert recovered.check_all() == []
        # The oid counter continues past everything the history issued.
        fresh = insert_pair(recovered, "new")[0]
        assert int(fresh.oid.rsplit("#", 1)[-1]) > int(
            item2.oid.rsplit("#", 1)[-1]
        )
        # Extents resolve from rebuilt indexes in insertion order.
        assert [o.oid for o in recovered.extent("Item")] == sorted(
            (o.oid for o in recovered.objects() if o.class_name == "Item"),
            key=lambda oid: int(oid.rsplit("#", 1)[-1]),
        )
        recovered.close()

    def test_recovered_store_matches_unindexed_recovery(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        for index in range(5):
            insert_pair(store, f"n{index}", price=float(index))
        store.close()
        indexed = ObjectStore.open(path)
        indexed.close()
        plain = ObjectStore.open(path, indexed=False)
        plain.close()
        assert [o.oid for o in indexed.extent("Item")] == [
            o.oid for o in plain.extent("Item")
        ]
        assert store_state(indexed) == store_state(plain)

    def test_frozenset_attributes_survive_recovery(self, tmp_path):
        source = """
        Database SetDB
        Class Doc
        attributes
          tags : P string
        end Doc
        """
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=parse_database(source))
        store.insert("Doc", tags=frozenset({"a", "b"}))
        store.close()
        recovered = ObjectStore.open(path)
        (doc,) = recovered.extent("Doc")
        assert doc.state["tags"] == frozenset({"a", "b"})
        recovered.close()

    def test_open_missing_directory_requires_schema(self, tmp_path):
        with pytest.raises(EngineError, match="pass a schema"):
            ObjectStore.open(tmp_path / "nowhere")

    def test_plain_init_refuses_existing_durable_state(self, tmp_path):
        path = tmp_path / "db"
        ObjectStore.open(path, schema=fresh_schema()).close()
        with pytest.raises(EngineError, match="use ObjectStore.open"):
            ObjectStore(fresh_schema(), wal=path)

    def test_recovery_with_verify_raises_on_violating_history(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema(), enforce=False)
        store.insert("Item", name="orphan", price=-1.0)  # violates oc1 + db1
        store.close()
        with pytest.raises(ConstraintViolation, match="recovery") as info:
            ObjectStore.open(path)
        assert "WalDB.Item.oc1" in info.value.constraint_names
        audited = ObjectStore.open(path, verify=False)
        assert audited.check_all() != []
        audited.close()


class TestTransactionMarkers:
    def test_aborted_transaction_never_recovers(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "keep")
        with pytest.raises(RuntimeError):
            with store.transaction():
                insert_pair(store, "ghost")
                raise RuntimeError("abort")
        store.close()
        recovered = ObjectStore.open(path)
        names = {o.state["name"] for o in recovered.extent("Item")}
        assert names == {"keep"}
        assert recovered.check_all() == []
        recovered.close()

    def test_inner_commit_inside_aborted_outer_never_recovers(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "keep")
        with pytest.raises(RuntimeError):
            with store.transaction():
                with store.transaction():
                    insert_pair(store, "inner")
                raise RuntimeError("outer abort")
        store.close()
        recovered = ObjectStore.open(path)
        assert {o.state["name"] for o in recovered.extent("Item")} == {"keep"}
        recovered.close()

    def test_crash_mid_transaction_discards_uncommitted_tail(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "keep")
        with store.transaction():
            item = store.insert("Item", name="wip", price=1.0)
            store.insert("Order", item=item, qty=1)
            store.wal.flush()
            # Crash: copy the durable directory while the transaction is
            # still open — its records are on disk but unterminated.
            crashed = truncated_copy(
                path, tmp_path / "crashed", (path / "wal.jsonl").read_bytes()
            )
        store.close()
        recovered = ObjectStore.open(crashed)
        assert {o.state["name"] for o in recovered.extent("Item")} == {"keep"}
        assert recovered.check_all() == []
        recovered.close()

    def test_commits_after_crash_mid_transaction_survive_next_recovery(
        self, tmp_path
    ):
        """Regression: the stale ``begin`` of a crashed transaction must be
        truncated at resume time.  Left in the log, it would open a bracket
        that never closes and silently swallow every record a *later*
        session commits (brackets are matched positionally)."""
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "keep")
        with store.transaction():
            item = store.insert("Item", name="wip", price=1.0)
            store.insert("Order", item=item, qty=1)
            store.wal.flush()
            crashed = truncated_copy(
                path, tmp_path / "crashed", (path / "wal.jsonl").read_bytes()
            )
        store.close()

        # Session 2: recover the crash image, then commit new work.
        second = ObjectStore.open(crashed)
        assert {o.state["name"] for o in second.extent("Item")} == {"keep"}
        insert_pair(second, "second-txn")
        second.close()

        # Session 3: both sessions' committed writes are still there.
        third = ObjectStore.open(crashed)
        assert {o.state["name"] for o in third.extent("Item")} == {
            "keep",
            "second-txn",
        }
        assert third.check_all() == []
        third.close()

    def test_empty_transactions_write_no_records(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        before = store.wal.pending_records
        with store.transaction():
            with store.transaction():
                pass
        assert store.wal.pending_records == before
        store.close()

    def test_rejected_commit_leaves_abort_marker(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "keep")
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                store.insert("Item", name="orphan", price=2.0)  # breaks db1
        store.close()
        recovered = ObjectStore.open(path)
        assert {o.state["name"] for o in recovered.extent("Item")} == {"keep"}
        recovered.close()


class TestCheckpoints:
    def test_checkpoint_compacts_log_and_preserves_state(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        for index in range(4):
            insert_pair(store, f"n{index}")
        assert store.wal.pending_records > 0
        store.checkpoint()
        assert store.wal.pending_records == 0
        item, _ = insert_pair(store, "after")
        store.close()
        recovered = ObjectStore.open(path)
        assert store_state(recovered) == store_state(store)
        recovered.close()

    def test_checkpoint_inside_transaction_is_refused(self, tmp_path):
        store = ObjectStore.open(tmp_path / "db", schema=fresh_schema())
        with pytest.raises(EngineError, match="inside a transaction"):
            with store.transaction():
                store.checkpoint()
        store.close()

    def test_crash_between_snapshot_and_log_reset_is_idempotent(self, tmp_path):
        """The checkpoint crash window: snapshot renamed but the old log
        still present.  Recovery must skip the already-snapshotted records
        by their LSNs instead of applying them twice."""
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        item, order = insert_pair(store, "n0")
        store.update(order, qty=5)
        old_log = (path / "wal.jsonl").read_bytes()
        store.checkpoint()
        store.close()
        # Undo the log reset, as if the crash hit right after the rename.
        (path / "wal.jsonl").write_bytes(old_log)
        recovered = ObjectStore.open(path)
        assert store_state(recovered) == store_state(store)
        assert recovered.get(order.oid).state["qty"] == 5
        # The stale records are already folded into the snapshot: none of
        # them count toward the next checkpoint.
        assert recovered.wal.pending_records == 0
        recovered.close()

    def test_automatic_checkpoint_after_threshold(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(
            path, schema=fresh_schema(), checkpoint_every=5
        )
        for index in range(4):
            insert_pair(store, f"n{index}")
        # Each pair writes begin + 2 ops + commit = 4 records; the policy
        # must have checkpointed at least once by now.
        assert store.wal.pending_records < 16
        store.close()
        recovered = ObjectStore.open(path)
        assert len(recovered.extent("Item")) == 4
        recovered.close()

    def test_wal_without_snapshot_is_unrecoverable(self, tmp_path):
        path = tmp_path / "db"
        path.mkdir()
        (path / "wal.jsonl").write_bytes(b"")
        with pytest.raises(EngineError, match="without a snapshot"):
            load_image(path)


def _committed_prefixes(path, actions):
    """Run ``actions`` against a fresh durable store at ``path``; returns
    (store, committed states after each successful top-level action)."""
    store = ObjectStore.open(path, schema=fresh_schema(), checkpoint_every=0)
    committed = [store_state(store)]
    for action in actions:
        try:
            action(store)
            committed.append(store_state(store))
        except (ConstraintViolation, RuntimeError):
            pass  # rejected or aborted: no new committed state
    return store, committed


def _scripted_actions():
    def abort_after_insert(store):
        with store.transaction():
            insert_pair(store, "aborted-marker")
            raise RuntimeError("abort")

    def nested_commit_outer_abort(store):
        with store.transaction():
            with store.transaction():
                insert_pair(store, "inner-marker")
            raise RuntimeError("outer abort")

    def doomed_commit(store):
        with store.transaction():
            store.insert("Item", name="orphan-marker", price=3.0)

    def update_first_order(store):
        orders = store.extent("Order")
        if orders:
            store.update(orders[0], qty=orders[0].state["qty"] + 1)

    def delete_last_pair(store):
        items = store.extent("Item")
        if not items:
            return
        victim = items[-1]
        with store.transaction():
            for order in store.extent("Order"):
                if order.state["item"] == victim.oid:
                    store.delete(order)
            store.delete(victim)

    return [
        lambda s: insert_pair(s, "a"),
        lambda s: insert_pair(s, "b", price=5.0, qty=2),
        abort_after_insert,
        update_first_order,
        nested_commit_outer_abort,
        lambda s: insert_pair(s, "c"),
        doomed_commit,
        delete_last_pair,
        lambda s: insert_pair(s, "d", price=7.5),
    ]


class TestLogTruncation:
    """Satellite: recovery from every log prefix — record boundaries and
    mid-record cuts — yields a committed prefix, never an aborted write."""

    @pytest.fixture(scope="class")
    def history(self):
        base = Path(tempfile.mkdtemp(prefix="repro-wal-test-"))
        path = base / "db"
        store, committed = _committed_prefixes(path, _scripted_actions())
        store.close()
        data = (path / "wal.jsonl").read_bytes()
        yield base, path, committed, data
        shutil.rmtree(base, ignore_errors=True)

    def _boundaries(self, data):
        boundaries = [0]
        offset = 0
        while True:
            newline = data.find(b"\n", offset)
            if newline == -1:
                break
            boundaries.append(newline + 1)
            offset = newline + 1
        return boundaries

    def test_every_record_boundary_recovers_a_committed_prefix(self, history):
        base, path, committed, data = history
        boundaries = self._boundaries(data)
        assert len(boundaries) > 10
        for index, cut in enumerate(boundaries):
            target = truncated_copy(path, base / f"cut-{index}", data[:cut])
            recovered = ObjectStore.open(target)
            state = store_state(recovered)
            assert state in committed, f"boundary {index} not a committed prefix"
            names = {
                obj.state["name"]
                for obj in recovered.objects()
                if obj.class_name == "Item"
            }
            assert not names & {"aborted-marker", "inner-marker", "orphan-marker"}
            assert recovered.check_all() == []
            recovered.close()
        # The full log recovers the final committed state.
        final = truncated_copy(path, base / "cut-full", data)
        recovered = ObjectStore.open(final)
        assert store_state(recovered) == committed[-1]
        recovered.close()

    def test_mid_record_cuts_recover_a_committed_prefix(self, history):
        base, path, committed, data = history
        boundaries = self._boundaries(data)
        cuts = [b + delta for b in boundaries for delta in (1, 7) if b + delta < len(data)]
        cuts.append(len(data) - 1)
        for index, cut in enumerate(cuts):
            target = truncated_copy(path, base / f"mid-{index}", data[:cut])
            recovered = ObjectStore.open(target)
            assert store_state(recovered) in committed
            assert recovered.check_all() == []
            recovered.close()


#: One generated top-level step: (kind, name index, price, qty, abort flag).
_steps = st.lists(
    st.tuples(
        st.sampled_from(["pair", "update", "delete", "txn", "nested"]),
        st.integers(0, 5),
        st.floats(-5, 50, allow_nan=False, width=32),
        st.integers(0, 4),
        st.booleans(),
    ),
    max_size=12,
)


class TestCrashRecoveryProperty:
    """Tentpole property: for arbitrary mutation histories and arbitrary
    log-truncation points, recovery yields exactly a committed prefix with
    consistent indexes and no constraint violations."""

    @settings(max_examples=40, deadline=None)
    @given(steps=_steps, cut_fraction=st.floats(0.0, 1.0))
    def test_recovered_state_is_a_committed_prefix(self, steps, cut_fraction):
        base = Path(tempfile.mkdtemp(prefix="repro-wal-prop-"))
        try:
            path = base / "db"
            actions = [self._compile(step) for step in steps]
            store, committed = _committed_prefixes(path, actions)
            store.close()
            data = (path / "wal.jsonl").read_bytes()
            cut = int(len(data) * cut_fraction)
            target = truncated_copy(path, base / "rec", data[:cut])
            recovered = ObjectStore.open(target)
            state = store_state(recovered)
            assert state in committed
            assert recovered.check_all() == []
            # Indexes agree with a from-scratch scan of the recovered store.
            for class_name in ("Item", "Order"):
                indexed = [o.oid for o in recovered.extent(class_name)]
                scanned = sorted(
                    (
                        o.oid
                        for o in recovered.objects()
                        if o.class_name == class_name
                    ),
                    key=lambda oid: int(oid.rsplit("#", 1)[-1]),
                )
                assert indexed == scanned
            recovered.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

    @staticmethod
    def _compile(step):
        kind, index, price, qty, abort = step

        def action(store):
            if kind == "pair":
                insert_pair(store, f"item-{index}", max(price, 0.0), max(qty, 1))
            elif kind == "update":
                orders = store.extent("Order")
                if orders:
                    store.update(orders[index % len(orders)], qty=qty)
            elif kind == "delete":
                items = store.extent("Item")
                if items:
                    victim = items[index % len(items)]
                    with store.transaction():
                        for order in store.extent("Order"):
                            if order.state["item"] == victim.oid:
                                store.delete(order)
                        store.delete(victim)
            elif kind == "txn":
                with store.transaction():
                    insert_pair(store, f"txn-{index}", abs(price), max(qty, 1))
                    if abort:
                        raise RuntimeError("abort")
            elif kind == "nested":
                with store.transaction():
                    with store.transaction():
                        insert_pair(store, f"nested-{index}", abs(price), 1)
                    orders = store.extent("Order")
                    if orders:
                        store.update(orders[0], qty=max(qty, 1))
                    if abort:
                        raise RuntimeError("outer abort")

        return action


class TestEnvironmentToggle:
    def test_repro_wal_env_attaches_throwaway_log(self, monkeypatch):
        monkeypatch.setenv("REPRO_WAL", "1")
        store = ObjectStore(fresh_schema())
        assert store.wal is not None
        insert_pair(store, "logged")
        assert store.wal.pending_records > 0
        wal_dir = store.wal.path
        assert (wal_dir / "wal.jsonl").exists()
        # Explicit opt-out beats the environment.
        assert ObjectStore(fresh_schema(), wal=False).wal is None

    def test_no_env_means_no_wal(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL", raising=False)
        assert ObjectStore(fresh_schema()).wal is None


class TestDurableCli:
    def _populated_dir(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=fresh_schema())
        insert_pair(store, "cli-item")
        store.close()
        return path

    def test_recover_reports_contents(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated_dir(tmp_path)
        assert main(["recover", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recovered 2 object(s)" in out and "all constraints hold" in out

    def test_snapshot_compacts(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated_dir(tmp_path)
        assert main(["snapshot", str(path)]) == 0
        assert "checkpointed" in capsys.readouterr().out
        records, _, _ = scan_log((path / "wal.jsonl").read_bytes())
        assert records == []

    def test_recover_flags_violations(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad"
        store = ObjectStore.open(path, schema=fresh_schema(), enforce=False)
        store.insert("Item", name="orphan", price=-2.0)
        store.close()
        assert main(["recover", str(path)]) == 1
        assert "violation" in capsys.readouterr().err

    def test_recover_missing_directory_fails_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot open"):
            main(["recover", str(tmp_path / "missing")])
