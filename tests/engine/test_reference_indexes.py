"""Tests for the reference-count index (repro.engine.indexes.ReferenceIndex).

The acceptance properties mirror ``test_indexes.py``: after *any* sequence of
inserts, updates, deletes, rollbacks and schema rebinds, every reference
index agrees with a from-scratch naive scan, and the delta-driven validator
with reference indexes accepts/rejects exactly the transactions full
revalidation accepts/rejects for quantified/referential constraints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObjectStore
from repro.constraints.evaluate import INDEX_MISS
from repro.engine.indexes import ReferenceIndex
from repro.errors import ConstraintViolation
from repro.tm.parser import parse_database

REFLAB_SOURCE = """
Database RefLab

Class Publisher
attributes
  name : string
end Publisher

Class Item
attributes
  title     : string
  publisher : Publisher
end Item

Class Special isa Item
attributes
  grade : int
end Special

Database constraints
  db_all: forall p in Publisher exists i in Item | i.publisher = p
"""

REFNONE_SOURCE = """
Database RefNone

Class Publisher
attributes
  name : string
end Publisher

Class Item
attributes
  title     : string
  publisher : Publisher
end Item

Database constraints
  db_none: forall p in Publisher (not (exists i in Item | i.publisher = p))
"""


def reflab_schema():
    return parse_database(REFLAB_SOURCE)


class _Abort(Exception):
    """Raised inside a transaction to force a rollback."""


# ---------------------------------------------------------------------------
# naive ground truth
# ---------------------------------------------------------------------------


def assert_reference_indexes_match_naive_scan(store: ObjectStore) -> None:
    """Every reference index must agree with a from-scratch scan."""
    manager = store._indexes
    assert manager is not None
    schema = store.schema
    live = list(store._objects.values())

    assert manager._references, "expected registered reference indexes"
    for (referrer, attribute), reference in manager._references.items():
        assert reference.valid
        tally: dict[str, int] = {}
        for obj in live:
            if schema.is_subclass_of(obj.class_name, referrer):
                value = obj.state[attribute]
                tally[value] = tally.get(value, 0) + 1
        assert reference._counts == tally
        alive = sum(1 for oid in tally if oid in store._objects)
        assert reference._live_with_ref == alive
        assert reference._dangling == len(tally) - alive
        if reference._dangling:
            continue  # probes degrade below; scan owns the semantics
        for obj in live:
            assert (
                manager.reference_count(referrer, attribute, obj.oid)
                == tally.get(obj.oid, 0)
            )
        referenced = reference.referenced_class
        members = [
            obj for obj in live
            if schema.is_subclass_of(obj.class_name, referenced)
        ]
        expected_all = all(tally.get(obj.oid, 0) > 0 for obj in members)
        expected_any = any(tally.get(obj.oid, 0) > 0 for obj in members)
        assert (
            manager.referential_verdict("all", referenced, referrer, attribute)
            is expected_all
        )
        assert (
            manager.referential_verdict("any", referenced, referrer, attribute)
            is expected_any
        )
        assert (
            manager.referential_verdict("none", referenced, referrer, attribute)
            is (not expected_any)
        )


# ---------------------------------------------------------------------------
# op interpreter shared by the property tests
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "pair_commit",
                "insert_item",
                "insert_special",
                "retarget",
                "delete_item",
                "delete_publisher",
                "retire_commit",
                "txn_abort",
                "rebind",
            ]
        ),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=8,
)


def _apply_one(
    store: ObjectStore,
    kind: str,
    a: int,
    b: int,
    c: int,
    on_reject=None,
) -> str | None:
    """Run one op; returns ``"rejected"`` when enforcement refused it.

    ``on_reject`` receives the :class:`ConstraintViolation` itself, for
    tests that compare *what* was rejected (constraint names, traces,
    cores) and not just the verdict."""
    try:
        if kind == "pair_commit":
            with store.transaction():
                publisher = store.insert("Publisher", name=f"P{c % 7}")
                store.insert("Item", title=f"t{b}", publisher=publisher)
        elif kind == "insert_item":
            publishers = store.extent("Publisher")
            if not publishers:
                return None
            store.insert(
                "Item", title=f"t{b}", publisher=publishers[a % len(publishers)]
            )
        elif kind == "insert_special":
            publishers = store.extent("Publisher")
            if not publishers:
                return None
            store.insert(
                "Special",
                title=f"s{b}",
                publisher=publishers[a % len(publishers)],
                grade=c % 5,
            )
        elif kind == "retarget":
            publishers = store.extent("Publisher")
            items = store.extent("Item")
            if not publishers or not items:
                return None
            store.update(
                items[a % len(items)], publisher=publishers[b % len(publishers)]
            )
        elif kind == "delete_item":
            items = store.extent("Item")
            if not items:
                return None
            store.delete(items[a % len(items)])
        elif kind == "delete_publisher":
            publishers = store.extent("Publisher")
            if not publishers:
                return None
            store.delete(publishers[a % len(publishers)])
        elif kind == "retire_commit":
            publishers = store.extent("Publisher")
            if not publishers:
                return None
            target = publishers[a % len(publishers)]
            with store.transaction():
                for item in store.extent("Item"):
                    if item.state["publisher"] == target.oid:
                        store.delete(item)
                store.delete(target)
        elif kind == "txn_abort":
            try:
                with store.transaction():
                    publisher = store.insert("Publisher", name=f"P{c % 7}")
                    store.insert("Item", title=f"t{b}", publisher=publisher)
                    items = store.extent("Item")
                    store.delete(items[a % len(items)])
                    raise _Abort()
            except _Abort:
                pass
        else:  # rebind: schema change with no data delta → rebuild path
            store.schema.set_constant("TUNING", c)
    except ConstraintViolation as exc:
        if on_reject is not None:
            on_reject(exc)
        return "rejected"
    return None


def _implicated_names(exc: ConstraintViolation) -> frozenset:
    """The constraint names a rejection implicates — from the structured
    violation list when present (bulk revalidation / transactions), else
    the single rejecting constraint's name."""
    if exc.violations:
        return frozenset(v.constraint_name for v in exc.violations)
    return frozenset({exc.constraint_name})


class TestReferenceIndexesMatchNaiveScans:
    """After any random history the maintained referrer counts, live totals
    and dangling totals agree with a from-scratch scan of the raw store."""

    @given(ops=OPS)
    @settings(max_examples=100, deadline=None)
    def test_random_histories(self, ops):
        store = ObjectStore(reflab_schema())
        for kind, a, b, c in ops:
            _apply_one(store, kind, a, b, c)
            assert_reference_indexes_match_naive_scan(store)


class TestIncrementalMatchesFullRevalidation:
    """Acceptance property: the delta-driven validator with reference
    indexes accepts/rejects identical transactions to full revalidation,
    and leaves identical states behind — rollback-resurrection and
    schema-rebind histories included."""

    @staticmethod
    def _snapshot(store):
        return {
            obj.oid: (obj.class_name, dict(obj.state))
            for obj in store.objects()
        }

    @given(ops=OPS)
    @settings(max_examples=100, deadline=None)
    def test_verdicts_and_states_match(self, ops):
        fast = ObjectStore(reflab_schema(), incremental=True, indexed=True)
        full = ObjectStore(reflab_schema(), incremental=False, indexed=False)
        for kind, a, b, c in ops:
            verdict_fast = _apply_one(fast, kind, a, b, c)
            verdict_full = _apply_one(full, kind, a, b, c)
            assert verdict_fast == verdict_full
            assert self._snapshot(fast) == self._snapshot(full)
        assert_reference_indexes_match_naive_scan(fast)

    def test_rollback_resurrection_restores_reference_indexes(self):
        store = ObjectStore(reflab_schema())
        with store.transaction():
            acm = store.insert("Publisher", name="ACM")
            store.insert("Item", title="a", publisher=acm)
            store.insert("Special", title="b", publisher=acm, grade=3)
        before = self._snapshot(store)
        with pytest.raises(_Abort):
            with store.transaction():
                for item in list(store.extent("Item")):
                    store.delete(item)
                store.delete(acm)
                replacement = store.insert("Publisher", name="Elsevier")
                store.insert("Item", title="c", publisher=replacement)
                raise _Abort()
        assert self._snapshot(store) == before
        assert_reference_indexes_match_naive_scan(store)
        assert store._indexes.reference_count("Item", "publisher", acm.oid) == 2

    def test_schema_rebind_triggers_rebuild_and_keeps_counts(self):
        schema = reflab_schema()
        store = ObjectStore(schema)
        with store.transaction():
            acm = store.insert("Publisher", name="ACM")
            store.insert("Item", title="a", publisher=acm)
        rebuilds = store._indexes.rebuilds
        schema.set_constant("TUNING", 7)
        store.insert("Item", title="b", publisher=acm)
        assert store._indexes.rebuilds == rebuilds + 1
        assert_reference_indexes_match_naive_scan(store)
        assert store._indexes.reference_count("Item", "publisher", acm.oid) == 2


class TestExplanationsAgreeAcrossConfigurations:
    """Differential acceptance property for explainable violations: the
    delta-driven indexed store, the plain scan store, and full
    ``store.audit()`` agree not only on the violation *set* but on the
    subset-minimal conflict cores explaining it, and rejected operations
    implicate the same constraints on both configurations."""

    @staticmethod
    def _core_set(store, violations):
        return frozenset(
            (core.constraint_name, frozenset(core.oids()))
            for core in store.explain_violations(violations)
        )

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_audits_and_cores_agree(self, ops):
        fast = ObjectStore(
            reflab_schema(), enforce=False, incremental=True, indexed=True
        )
        slow = ObjectStore(
            reflab_schema(), enforce=False, incremental=False, indexed=False
        )
        for kind, a, b, c in ops:
            _apply_one(fast, kind, a, b, c)
            _apply_one(slow, kind, a, b, c)
        violations_fast = fast.audit()
        violations_slow = slow.audit()
        # Violation equality is (constraint_name, detail) — list order and
        # content must match between the indexed and the scan store
        assert violations_fast == violations_slow
        assert self._core_set(fast, violations_fast) == self._core_set(
            slow, violations_slow
        )

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_rejections_implicate_the_same_constraints(self, ops):
        fast = ObjectStore(reflab_schema(), incremental=True, indexed=True)
        full = ObjectStore(reflab_schema(), incremental=False, indexed=False)
        for kind, a, b, c in ops:
            fast_excs: list = []
            full_excs: list = []
            verdict_fast = _apply_one(fast, kind, a, b, c, fast_excs.append)
            verdict_full = _apply_one(full, kind, a, b, c, full_excs.append)
            assert verdict_fast == verdict_full
            if verdict_fast == "rejected":
                # the incremental path raises on the first failing
                # constraint, full revalidation lists every violation —
                # they must overlap on at least one implicated constraint
                names_fast = _implicated_names(fast_excs[0])
                names_full = _implicated_names(full_excs[0])
                assert names_fast & names_full, (
                    f"disjoint rejection reasons: "
                    f"{sorted(names_fast)} vs {sorted(names_full)}"
                )


class TestProbeSemantics:
    def test_registration_from_dependency_index(self):
        store = ObjectStore(reflab_schema())
        assert store.dependency_index().reference_specs() == frozenset(
            {("Item", "publisher", "Publisher")}
        )
        reference = store._indexes._references[("Item", "publisher")]
        assert reference.referenced_class == "Publisher"

    def test_non_reference_equality_is_not_registered(self):
        source = """
        Database Plain

        Class Tag
        attributes
          label : string
        end Tag

        Class Post
        attributes
          label : string
        end Post

        Database constraints
          db1: forall t in Tag exists p in Post | p.label = t.label
        """
        store = ObjectStore(parse_database(source), enforce=False)
        assert store.dependency_index().reference_specs() == frozenset()
        assert store._indexes._references == {}

    def test_unreferenced_publisher_rejected_via_probe(self):
        store = ObjectStore(reflab_schema())
        with store.transaction():
            acm = store.insert("Publisher", name="ACM")
            store.insert("Item", title="a", publisher=acm)
        with pytest.raises(ConstraintViolation, match="db_all"):
            store.insert("Publisher", name="Ghost")
        assert len(store.extent("Publisher")) == 1

    def test_forall_not_exists_uses_none_verdict(self):
        store = ObjectStore(parse_database(REFNONE_SOURCE))
        store.insert("Publisher", name="ACM")
        manager = store._indexes
        assert (
            manager.referential_verdict("none", "Publisher", "Item", "publisher")
            is True
        )
        with pytest.raises(ConstraintViolation, match="db_none"):
            store.insert(
                "Item", title="a", publisher=store.extent("Publisher")[0]
            )
        assert store.extent("Item") == []

    def test_inner_exists_probe_serves_bound_targets(self, monkeypatch):
        """`exists i in Item | i.publisher = s.publisher` has no whole-formula
        verdict (the compared side is a dotted path), so the per-binding
        referrer-count probe must answer each outer iteration in O(1)."""
        source = REFLAB_SOURCE.replace(
            "db_all: forall p in Publisher exists i in Item | i.publisher = p",
            "db_all: forall p in Publisher exists i in Item | i.publisher = p\n"
            "  db_special: forall s in Special exists i in Item"
            " | i.publisher = s.publisher",
        )
        store = ObjectStore(parse_database(source))
        with store.transaction():
            acm = store.insert("Publisher", name="ACM")
            store.insert("Item", title="a", publisher=acm)
        manager = store._indexes
        calls = []
        original = manager.reference_count

        def spy(referrer, attribute, oid):
            calls.append((referrer, attribute, oid))
            return original(referrer, attribute, oid)

        monkeypatch.setattr(manager, "reference_count", spy)
        store.insert("Special", title="s", publisher=acm, grade=3)
        assert ("Item", "publisher", acm.oid) in calls

    def test_shadowed_quantifier_variable_stays_on_scan_path(self):
        """Regression: in ``forall y in C exists y in D | y.ref = y`` the
        inner ``y`` shadows the outer, so the body compares each D member to
        *itself* — a self-reference check, not the referenced-by pattern.
        The fast path must refuse the match; misreading it made an indexed
        store accept states full validation rejects."""
        source = """
        Database Shadow

        Class C
        attributes
          name : string
        end C

        Class D isa C
        attributes
          ref : C
        end D

        Database constraints
          db_self: forall y in C exists y in D | y.ref = y
        """
        from repro.constraints.ast import match_referential_quantifier

        schema = parse_database(source)
        assert (
            match_referential_quantifier(schema.database_constraints[0].formula)
            is None
        )
        reports = []
        for indexed in (True, False):
            store = ObjectStore(
                parse_database(source), enforce=False, indexed=indexed
            )
            # A two-cycle d1 ↔ d2: every C member referenced by *some* D
            # (which the misread pattern would accept) but no D references
            # itself (so the true, shadowed reading is violated).
            seed = store.insert("C", name="seed")
            d1 = store.insert("D", name="d1", ref=seed)
            d2 = store.insert("D", name="d2", ref=d1)
            store.update(d1, ref=d2)
            store.delete(seed)
            assert store.dependency_index().reference_specs() == frozenset()
            reports.append(store.check_all())
        assert reports[0] == reports[1]
        assert reports[0], "the shadowed self-reference constraint is violated"

    def test_dangling_reference_degrades_to_scan(self):
        """An unenforced store can hold dangling references; the probes must
        answer INDEX_MISS (the scan alone reproduces dereference errors) and
        indexed/unindexed full audits must agree."""
        reports = []
        for indexed in (True, False):
            store = ObjectStore(reflab_schema(), enforce=False, indexed=indexed)
            acm = store.insert("Publisher", name="ACM")
            store.insert("Item", title="a", publisher=acm)
            store.delete(acm)  # leaves the item dangling
            if indexed:
                manager = store._indexes
                assert (
                    manager.reference_count("Item", "publisher", acm.oid)
                    is INDEX_MISS
                )
                assert (
                    manager.referential_verdict(
                        "all", "Publisher", "Item", "publisher"
                    )
                    is INDEX_MISS
                )
            reports.append(store.check_all())
        assert reports[0] == reports[1]


class TestReferenceIndexStructure:
    def test_transitions_through_delete_and_resurrection(self):
        alive: set[str] = set()
        reference = ReferenceIndex(
            "Item", "publisher", "Publisher", alive.__contains__
        )
        alive.add("Publisher#1")
        reference.add_referrer("Publisher#1")
        reference.add_referrer("Publisher#1")
        assert reference.count_for("Publisher#1") == 2
        assert reference.verdict("all", 1) is True
        assert reference.verdict("none", 1) is False
        # the referenced object leaves: its referrers dangle, probes degrade
        alive.discard("Publisher#1")
        reference.leave("Publisher#1")
        assert reference.count_for("Publisher#1") is INDEX_MISS
        assert reference.verdict("all", 0) is INDEX_MISS
        # resurrection restores the O(1) answers
        alive.add("Publisher#1")
        reference.join("Publisher#1")
        assert reference.count_for("Publisher#1") == 2
        reference.remove_referrer("Publisher#1")
        reference.remove_referrer("Publisher#1")
        assert reference.count_for("Publisher#1") == 0
        assert reference.verdict("any", 1) is False
        assert reference.verdict("none", 1) is True

    def test_invalidates_on_unmaintainable_values(self):
        reference = ReferenceIndex("Item", "publisher", "Publisher", lambda oid: True)
        reference.add_referrer(None)  # a reference slot must hold an oid
        assert not reference.valid
        assert reference.count_for("Publisher#1") is INDEX_MISS
        assert reference.verdict("all", 0) is INDEX_MISS

    def test_invalidates_on_removal_never_added(self):
        reference = ReferenceIndex("Item", "publisher", "Publisher", lambda oid: True)
        reference.remove_referrer("Publisher#1")
        assert not reference.valid
