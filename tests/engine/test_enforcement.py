"""Tests for constraint enforcement (repro.engine.enforcement) — the
component databases of the paper enforce their own constraints."""

import pytest

from repro.engine import ObjectStore, select
from repro.errors import ConstraintViolation
from repro.fixtures import (
    bookseller_store,
    cslibrary_schema,
    cslibrary_store,
    personnel_stores,
)


class TestObjectConstraintEnforcement:
    def test_oc1_price_invariant(self):
        store, _ = cslibrary_store()
        with pytest.raises(ConstraintViolation, match="Publication.oc1"):
            store.insert(
                "Publication",
                title="Overpriced",
                isbn="ISBN-300",
                publisher="ACM",
                shopprice=10.0,
                ourprice=12.0,
            )

    def test_oc2_known_publishers(self):
        store, _ = cslibrary_store()
        with pytest.raises(ConstraintViolation, match="Publication.oc2"):
            store.insert(
                "Publication",
                title="Obscure",
                isbn="ISBN-301",
                publisher="Basement Press",
                shopprice=10.0,
                ourprice=9.0,
            )

    def test_inherited_constraints_enforced_on_subclass(self):
        store, _ = cslibrary_store()
        with pytest.raises(ConstraintViolation, match="Publication.oc1"):
            store.insert(
                "RefereedPubl",
                title="Overpriced proceedings",
                isbn="ISBN-302",
                publisher="ACM",
                shopprice=10.0,
                ourprice=12.0,
                editors=frozenset(),
                rating=3,
                avgAccRate=0.2,
            )

    def test_refereed_rating_floor(self):
        store, _ = cslibrary_store()
        with pytest.raises(ConstraintViolation, match="RefereedPubl.oc1"):
            store.insert(
                "RefereedPubl",
                title="Too low",
                isbn="ISBN-303",
                publisher="ACM",
                shopprice=10.0,
                ourprice=9.0,
                editors=frozenset(),
                rating=1,  # oc1: rating >= 2
                avgAccRate=0.2,
            )

    def test_conditional_constraint_ieee_implies_refereed(self):
        store, named = bookseller_store()
        with pytest.raises(ConstraintViolation, match="Proceedings.oc1"):
            store.insert(
                "Proceedings",
                title="IEEE informal notes",
                isbn="ISBN-304",
                publisher=named["ieee"],
                authors=frozenset(),
                shopprice=10.0,
                libprice=9.0,
                **{"ref?": False},  # IEEE implies ref?=true
                rating=8,
            )

    def test_conditional_constraint_refereed_rating(self):
        store, named = bookseller_store()
        with pytest.raises(ConstraintViolation, match="Proceedings.oc2"):
            store.insert(
                "Proceedings",
                title="Refereed but lowly rated",
                isbn="ISBN-305",
                publisher=named["springer"],
                authors=frozenset(),
                shopprice=10.0,
                libprice=9.0,
                **{"ref?": True},
                rating=5,  # ref?=true implies rating >= 7
            )

    def test_acm_rating_constraint(self):
        store, named = bookseller_store()
        with pytest.raises(ConstraintViolation, match="Proceedings.oc3"):
            store.insert(
                "Proceedings",
                title="ACM workshop",
                isbn="ISBN-306",
                publisher=named["acm"],
                authors=frozenset(),
                shopprice=10.0,
                libprice=9.0,
                **{"ref?": False},
                rating=4,  # ACM implies rating >= 6
            )


class TestClassConstraintEnforcement:
    def test_key_constraint(self):
        store, _ = cslibrary_store()
        with pytest.raises(ConstraintViolation, match="Publication.cc1"):
            store.insert(
                "Publication",
                title="Duplicate ISBN",
                isbn="ISBN-001",  # already used by vldb95
                publisher="ACM",
                shopprice=10.0,
                ourprice=9.0,
            )

    def test_key_spans_subclasses(self):
        store, _ = cslibrary_store()
        # ISBN of a RefereedPubl clashes with a new ProfessionalPubl: the key
        # is declared on Publication whose deep extent covers both.
        with pytest.raises(ConstraintViolation, match="Publication.cc1"):
            store.insert(
                "ProfessionalPubl",
                title="Clash",
                isbn="ISBN-002",
                publisher="ACM",
                shopprice=10.0,
                ourprice=9.0,
                authors=frozenset(),
            )

    def test_sum_constraint_cc2(self):
        schema = cslibrary_schema()
        schema.set_constant("MAX", 100)  # tighten for the test
        store = ObjectStore(schema)
        store.insert(
            "Publication",
            title="A",
            isbn="1",
            publisher="ACM",
            shopprice=60.0,
            ourprice=60.0,
        )
        with pytest.raises(ConstraintViolation, match="Publication.cc2"):
            store.insert(
                "Publication",
                title="B",
                isbn="2",
                publisher="ACM",
                shopprice=50.0,
                ourprice=50.0,
            )

    def test_avg_rating_constraint(self):
        store, _ = cslibrary_store()
        # Fixture ScientificPubl ratings: 4, 3, 2 (avg 3).  Adding two
        # rating-5 publications pushes the average to 3.8 (< 4, fine); a
        # third pushes it to 4 — rejected by ScientificPubl.cc1.
        def add(i, rating):
            store.insert(
                "RefereedPubl",
                title=f"High {i}",
                isbn=f"ISBN-31{i}",
                publisher="ACM",
                shopprice=10.0,
                ourprice=9.0,
                editors=frozenset(),
                rating=rating,
                avgAccRate=0.1,
            )

        add(0, 5)
        add(1, 5)
        with pytest.raises(ConstraintViolation, match="ScientificPubl.cc1"):
            add(2, 5)


class TestDatabaseConstraintEnforcement:
    def test_publisher_without_item_rejected(self):
        store, _ = bookseller_store()
        with pytest.raises(ConstraintViolation, match="Bookseller.db1"):
            store.insert("Publisher", name="Ghost Press", location="Nowhere")

    def test_transaction_allows_intermediate_violation(self):
        store, _ = bookseller_store()
        with store.transaction():
            publisher = store.insert("Publisher", name="Morgan", location="SF")
            store.insert(
                "Monograph",
                title="New readings",
                isbn="ISBN-400",
                publisher=publisher,
                authors=frozenset(),
                shopprice=20.0,
                libprice=18.0,
                subjects=frozenset(),
            )
        assert len(store.extent("Publisher", deep=False)) == 4

    def test_transaction_rolls_back_on_final_violation(self):
        store, _ = bookseller_store()
        before = len(store)
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                store.insert("Publisher", name="Lonely", location="Nowhere")
        assert len(store) == before

    def test_transaction_rolls_back_on_exception(self):
        store, named = bookseller_store()
        original_price = named["vldb95"].state["libprice"]
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(named["vldb95"], libprice=1.0)
                raise RuntimeError("abort")
        assert named["vldb95"].state["libprice"] == original_price


class TestSelect:
    def test_select_by_source_predicate(self):
        store, _ = bookseller_store()
        refereed = select(store, "Proceedings", "ref? = true")
        assert {obj.state["isbn"] for obj in refereed} == {"ISBN-001", "ISBN-006"}

    def test_select_traverses_references(self):
        store, _ = bookseller_store()
        acm_items = select(store, "Item", "publisher.name = 'ACM'")
        assert {obj.state["isbn"] for obj in acm_items} == {"ISBN-001", "ISBN-008"}

    def test_select_with_callable(self):
        store, _ = cslibrary_store()
        cheap = select(store, "Publication", lambda o: o.state["ourprice"] < 30)
        assert len(cheap) == 2

    def test_select_whole_extent(self):
        store, _ = cslibrary_store()
        assert len(select(store, "ScientificPubl")) == 3

    def test_select_uses_schema_constants(self):
        store, _ = cslibrary_store()
        known = select(store, "Publication", "publisher in KNOWNPUBLISHERS")
        assert len(known) == 5


class TestPersonnelFixture:
    def test_stores_build_clean(self):
        db1, db2, named = personnel_stores()
        assert db1.check_all() == []
        assert db2.check_all() == []

    def test_shared_employee(self):
        db1, db2, named = personnel_stores()
        assert named["bob_db1"].state["ssn"] == named["bob_db2"].state["ssn"]

    def test_subjective_salary_rule_enforced_locally(self):
        db1, _, _ = personnel_stores()
        with pytest.raises(ConstraintViolation, match="Employee.oc2"):
            db1.insert("Employee", ssn="100-99", salary=2000.0, trav_reimb=10)
