"""Property tests for explainable violations (repro.engine.explain).

Three properties, each proved over random schemas' instances and histories:

1. **Cores conflict in isolation** — every reported conflict core, checked
   by an *independent* masked evaluator built in this file (not the one in
   ``repro.engine.explain``), still violates its constraint when the store
   is restricted to exactly the core's members.
2. **Subset-minimality** — removing any single member of a core resolves
   the conflict on the restricted view.
3. **Traced ≡ untraced** — evaluation with reason tracing produces
   bit-identical verdicts (value *and* type, including the ``VACUOUS``
   sentinel) and identical errors, across indexed contexts, scan contexts
   (``indexes=None``), MVCC snapshot contexts, and with ``REPRO_WAL=1``.

Plus regressions: vacuous/tri-state verdicts carry a non-empty well-formed
trace; ``EvaluationError`` carries the quantifier bindings in scope; the
commit/rollback path attaches cores *before* the undo destroys the violating
state; and the ``repro explain`` CLI covers every violation class.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObjectStore
from repro.constraints.evaluate import (
    VACUOUS,
    EvalContext,
    ReasonTrace,
    TraceEvent,
    evaluate,
    evaluate_traced,
)
from repro.constraints.model import ConstraintKind
from repro.errors import ConstraintViolation, EngineError, EvaluationError
from repro.tm.parser import parse_database

EXPLAINLAB_SOURCE = """
Database ExplainLab

constants
  MAX = 100
  LIMIT = 3

Class Publisher
attributes
  name : string
end Publisher

Class Item
attributes
  title     : string
  isbn      : string
  price     : int
  publisher : Publisher
object constraints
  oc_price: price >= 0
class constraints
  cc_key: key isbn
  cc_sum: (sum (collect x for x in self) over price) < MAX
end Item

Class Special isa Item
attributes
  grade : int
end Special

Database constraints
  db_ref: forall p in Publisher exists i in Item | i.publisher = p
  db_grade: forall s in Special | s.grade <= LIMIT
"""


def explainlab_schema():
    return parse_database(EXPLAINLAB_SOURCE)


TRACE_KINDS = {
    "attr",
    "constant",
    "probe",
    "extent",
    "binding",
    "member",
    "error",
}


# ---------------------------------------------------------------------------
# random histories
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("pub")),
        st.tuples(
            st.just("item"),
            st.integers(0, 3),
            st.integers(-2, 60),
            st.integers(0, 2),
        ),
        st.tuples(
            st.just("special"),
            st.integers(0, 3),
            st.integers(0, 60),
            st.integers(0, 2),
            st.integers(0, 6),
        ),
        st.tuples(st.just("del_pub"), st.integers(0, 3)),
        st.tuples(st.just("del_item"), st.integers(0, 3)),
        st.tuples(st.just("set_price"), st.integers(0, 3), st.integers(-2, 60)),
    ),
    max_size=10,
)


def build_store(ops, **store_kwargs) -> ObjectStore:
    """Replay a random history on a non-enforcing ExplainLab store.

    Deletions may leave dangling references and unreferenced publishers —
    deliberately: that is how the error-mode cores get exercised."""
    store = ObjectStore(explainlab_schema(), enforce=False, **store_kwargs)
    pubs: list = []
    items: list = []
    for op in ops:
        kind = op[0]
        if kind == "pub":
            pubs.append(store.insert("Publisher", name=f"P{len(pubs)}"))
        elif kind == "item":
            if not pubs:
                continue
            _, p, price, isbn = op
            items.append(
                store.insert(
                    "Item",
                    title=f"t{len(items)}",
                    isbn=f"i{isbn}",
                    price=price,
                    publisher=pubs[p % len(pubs)],
                )
            )
        elif kind == "special":
            if not pubs:
                continue
            _, p, price, isbn, grade = op
            items.append(
                store.insert(
                    "Special",
                    title=f"s{len(items)}",
                    isbn=f"i{isbn}",
                    price=price,
                    publisher=pubs[p % len(pubs)],
                    grade=grade,
                )
            )
        elif kind == "del_pub":
            if not pubs:
                continue
            store.delete(pubs.pop(op[1] % len(pubs)))
        elif kind == "del_item":
            if not items:
                continue
            store.delete(items.pop(op[1] % len(items)))
        elif kind == "set_price":
            if not items:
                continue
            try:
                store.update(items[op[1] % len(items)], price=op[2])
            except EngineError:
                # updating an object whose reference dangles re-validates
                # its full state; keep the dangling state as-is instead
                pass
    return store


# ---------------------------------------------------------------------------
# an independent masked evaluator (deliberately NOT repro.engine.explain)
# ---------------------------------------------------------------------------


def _masked_ctx(store, keep, current=None, self_class=None):
    extents = {
        name: [obj for obj in store.extent(name) if obj.oid in keep]
        for name in store.schema.classes
    }

    def get_attr(obj, name):
        value = store.get_attr(obj, name)
        target = getattr(value, "oid", None)
        if isinstance(target, str) and target not in keep:
            raise EngineError(f"masked reference {name!r} -> {target!r}")
        return value

    return EvalContext(
        current=current,
        extents=extents,
        self_extent=extents.get(self_class, ()) if self_class else (),
        self_extent_class=self_class,
        constants=store.schema.constants,
        get_attr=get_attr,
        indexes=None,
    )


def violated_in_isolation(store, constraint, keep, errors_conflict) -> bool:
    """Ground truth: does ``constraint`` fail on the sub-store ``keep``?

    Mirrors the documented core semantics — falsy verdicts always conflict;
    evaluation failures conflict only for cores born from an error — but is
    implemented from scratch on a hand-built :class:`EvalContext`."""
    keep = frozenset(keep)
    formula = constraint.formula
    if constraint.kind is ConstraintKind.OBJECT:
        for obj in store.extent(constraint.owner):
            if obj.oid not in keep:
                continue
            try:
                verdict = evaluate(formula, _masked_ctx(store, keep, current=obj))
            except (EvaluationError, EngineError):
                if errors_conflict:
                    return True
                continue
            if not verdict:
                return True
        return False
    self_class = (
        constraint.owner if constraint.kind is ConstraintKind.CLASS else None
    )
    try:
        verdict = evaluate(
            formula, _masked_ctx(store, keep, self_class=self_class)
        )
    except (EvaluationError, EngineError):
        return errors_conflict
    return not verdict


# ---------------------------------------------------------------------------
# property 1 + 2: cores conflict in isolation and are subset-minimal
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_cores_conflict_in_isolation_and_are_subset_minimal(ops):
    store = build_store(ops)
    try:
        violations = store.audit()
        cores = store.explain_violations(violations)
        if violations:
            assert cores, "every audited violation must yield a core"
        for core in cores:
            constraint = core.constraint
            assert constraint is not None
            keep = frozenset(core.oids())
            errors_conflict = core.verdict == "error"
            # (1) the core still conflicts in isolation
            assert violated_in_isolation(
                store, constraint, keep, errors_conflict
            ), f"core {sorted(keep)} of {core.constraint_name} does not conflict"
            # (2) removing any single member resolves the conflict
            assert core.minimal, "shrink budget must suffice at this scale"
            for member in sorted(keep):
                assert not violated_in_isolation(
                    store, constraint, keep - {member}, errors_conflict
                ), (
                    f"core {sorted(keep)} of {core.constraint_name} is not "
                    f"minimal: still conflicts without {member}"
                )
    finally:
        store.close()


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_core_members_carry_explanations(ops):
    """Core metadata is well-formed: members name live objects of the right
    class, describe() renders, and the isolated trace covers the members."""
    store = build_store(ops)
    try:
        for core in store.explain_violations():
            text = core.describe()
            assert core.constraint_name in text
            for member in core.members:
                obj = store.get(member.oid)
                assert obj.class_name == member.class_name
                assert isinstance(member.describe(), str)
            assert all(
                event.kind in TRACE_KINDS for event in core.trace.events
            )
    finally:
        store.close()


# ---------------------------------------------------------------------------
# property 3: traced ≡ untraced, bit-identically
# ---------------------------------------------------------------------------


def _canon(value):
    return ("value", type(value).__name__, value)


def _outcome(formula, make_ctx, trace=None):
    try:
        if trace is None:
            return _canon(evaluate(formula, make_ctx()))
        verdict, _ = evaluate_traced(formula, make_ctx(), trace)
        return _canon(verdict)
    except (EvaluationError, EngineError) as exc:
        return ("error", type(exc).__name__, str(exc))


def _eval_points(constraint, extent_of):
    """(current, self_extent_class) pairs a constraint is evaluated at."""
    if constraint.kind is ConstraintKind.OBJECT:
        return [(obj, None) for obj in extent_of(constraint.owner)]
    if constraint.kind is ConstraintKind.CLASS:
        return [(None, constraint.owner)]
    return [(None, None)]


def _assert_store_equivalence(store):
    for constraint in store.schema.all_constraints():
        for scan in (False, True):
            for current, self_class in _eval_points(constraint, store.extent):

                def make_ctx():
                    ctx = store.eval_context(
                        current=current, self_extent_class=self_class
                    )
                    if scan:
                        ctx.indexes = None
                    return ctx

                trace = ReasonTrace()
                untraced = _outcome(constraint.formula, make_ctx)
                traced = _outcome(constraint.formula, make_ctx, trace)
                assert traced == untraced, (
                    f"{constraint.qualified_name} (scan={scan}, "
                    f"current={getattr(current, 'oid', None)}): "
                    f"traced {traced!r} != untraced {untraced!r}"
                )
                assert all(
                    isinstance(event, TraceEvent)
                    and event.kind in TRACE_KINDS
                    for event in trace.events
                )


@settings(max_examples=50, deadline=None)
@given(ops=OPS)
def test_traced_equals_untraced_verdicts(ops):
    store = build_store(ops)
    try:
        _assert_store_equivalence(store)
    finally:
        store.close()


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_traced_equals_untraced_without_indexes(ops):
    store = build_store(ops, indexed=False, incremental=False)
    try:
        _assert_store_equivalence(store)
    finally:
        store.close()


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_traced_equals_untraced_under_snapshot(ops):
    store = build_store(ops)
    try:
        with store.snapshot() as snap:
            extents = {
                name: snap.extent(name) for name in store.schema.classes
            }

            def snap_extent(class_name):
                return extents[class_name]

            for constraint in store.schema.all_constraints():
                for current, self_class in _eval_points(
                    constraint, snap_extent
                ):

                    def make_ctx():
                        return EvalContext(
                            current=current,
                            extents=extents,
                            self_extent=(
                                extents[self_class] if self_class else ()
                            ),
                            self_extent_class=self_class,
                            constants=store.schema.constants,
                            get_attr=snap.get_attr,
                            indexes=None,
                        )

                    trace = ReasonTrace()
                    untraced = _outcome(constraint.formula, make_ctx)
                    traced = _outcome(constraint.formula, make_ctx, trace)
                    assert traced == untraced, (
                        f"{constraint.qualified_name} under snapshot: "
                        f"traced {traced!r} != untraced {untraced!r}"
                    )
    finally:
        store.close()


@settings(max_examples=20, deadline=None)
@given(ops=OPS)
def test_traced_equals_untraced_with_wal(ops):
    """Same equivalence with REPRO_WAL=1: every store gets a throwaway
    write-ahead log, so tracing is proved inert for the durability path."""
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_WAL", "1")
        store = build_store(ops)
        try:
            _assert_store_equivalence(store)
            violations = store.audit()
            cores = store.explain_violations(violations)
            if violations:
                assert cores
        finally:
            store.close()


# ---------------------------------------------------------------------------
# regression: vacuous / tri-state verdicts carry a well-formed trace
# ---------------------------------------------------------------------------

VACLAB_SOURCE = """
Database VacLab

Class Thing
attributes
  score : int
class constraints
  cc_vac: (avg (collect x for x in self) over score) > 5 and
          (count (collect x for x in self)) >= 1
end Thing

Class Other
attributes
  tag : string
end Other
"""


def test_vacuous_verdict_violation_carries_trace():
    """An empty extent makes the avg conjunct VACUOUS and the count
    conjunct False; the audit violation must still carry a trace whose
    events show *why* (the empty extent scans that produced it)."""
    store = ObjectStore(parse_database(VACLAB_SOURCE), enforce=False)
    violations = store.audit()
    assert [v.constraint_name for v in violations] == ["VacLab.Thing.cc_vac"]
    trace = violations[0].trace
    assert trace is not None and trace.events, "vacuous verdict lost its trace"
    assert all(event.kind in TRACE_KINDS for event in trace.events)
    # indexed stores answer the empty-extent aggregates with probes; scan
    # contexts record the extent sweep itself — either is evidence
    assert any(event.kind in ("extent", "probe") for event in trace.events)
    assert isinstance(trace.describe(), str) and trace.describe()
    # the traced verdict is bit-identical to the untraced one (False, not
    # VACUOUS: the conjunction collapses the tri-state)
    constraint = next(iter(store.schema.all_constraints()))
    ctx = store.eval_context(self_extent_class="Thing")
    verdict, _ = evaluate_traced(constraint.formula, ctx)
    assert verdict is False or verdict == evaluate(
        constraint.formula,
        store.eval_context(self_extent_class="Thing"),
    )


def test_vacuous_verdict_raise_carries_trace():
    """The *raised* ConstraintViolation (enforcing store, full revalidation
    triggered by an unrelated insert) carries the vacuous-verdict trace."""
    store = ObjectStore(parse_database(VACLAB_SOURCE))
    with pytest.raises(ConstraintViolation) as excinfo:
        store.insert("Other", tag="unrelated")
    violation = next(
        v
        for v in excinfo.value.violations
        if v.constraint_name.endswith("cc_vac")
    )
    assert violation.trace is not None and violation.trace.events
    assert any(
        event.kind in ("extent", "probe") for event in violation.trace.events
    )


def test_vacuous_aggregate_alone_is_not_a_violation():
    """Control: a lone vacuous aggregate comparison is truthy (tri-state),
    so an empty extent with only the avg conjunct audits clean."""
    source = VACLAB_SOURCE.replace(
        "cc_vac: (avg (collect x for x in self) over score) > 5 and\n"
        "          (count (collect x for x in self)) >= 1",
        "cc_vac: (avg (collect x for x in self) over score) > 5",
    )
    store = ObjectStore(parse_database(source), enforce=False)
    assert store.audit() == []
    constraint = next(iter(store.schema.all_constraints()))
    verdict, trace = evaluate_traced(
        constraint.formula, store.eval_context(self_extent_class="Thing")
    )
    assert verdict is VACUOUS
    assert trace.events, "even a vacuous success records its extent scan"


# ---------------------------------------------------------------------------
# regression: EvaluationError carries the bindings in scope
# ---------------------------------------------------------------------------

ERRLAB_SOURCE = """
Database ErrLab

Class Thing
attributes
  score : int
  label : string
end Thing

Database constraints
  db_bad: forall t in Thing | t.score + t.label > 0
"""


def test_evaluation_error_carries_bindings():
    store = ObjectStore(parse_database(ERRLAB_SOURCE), enforce=False)
    thing = store.insert("Thing", score=1, label="x")
    constraint = store.schema.database_constraints[0]
    trace = ReasonTrace()
    with pytest.raises(EvaluationError) as excinfo:
        evaluate_traced(constraint.formula, store.eval_context(), trace)
    bindings = dict(excinfo.value.bindings)
    assert bindings.get("t") == thing.oid, (
        "the error must name the quantifier binding that was in scope"
    )
    # the partial trace survives the raise: the reads up to the failure
    assert any(
        event.kind == "attr" and event.subject == thing.oid
        for event in trace.events
    )
    assert thing.oid in trace.support()


def test_audit_error_violation_carries_error_trace():
    store = ObjectStore(parse_database(ERRLAB_SOURCE), enforce=False)
    thing = store.insert("Thing", score=1, label="x")
    violations = store.audit()
    assert [v.constraint_name for v in violations] == ["ErrLab.db_bad"]
    trace = violations[0].trace
    assert trace is not None
    assert any(event.kind == "error" for event in trace.events)
    assert thing.oid in trace.support()
    cores = store.explain_violations(violations)
    assert len(cores) == 1 and cores[0].verdict == "error"
    assert cores[0].oids() == (thing.oid,)


# ---------------------------------------------------------------------------
# commit / rollback wiring
# ---------------------------------------------------------------------------


def test_transaction_rejection_carries_cores_before_rollback():
    store = ObjectStore(explainlab_schema())
    with store.transaction():
        publisher = store.insert("Publisher", name="Referenced")
        store.insert(
            "Item", title="t", isbn="a", price=1, publisher=publisher
        )
    with pytest.raises(ConstraintViolation) as excinfo:
        with store.transaction():
            store.insert("Publisher", name="Ghost")
    exc = excinfo.value
    assert exc.violations, "transaction rejection must list violations"
    assert exc.cores, "cores must be extracted before the rollback undo"
    core_oids = {m.oid for core in exc.cores for m in core.members}
    ghost = {oid for oid in core_oids if oid not in store._objects}
    assert ghost, "the core must name the rolled-back ghost publisher"
    assert store.audit() == [], "rollback restored the consistent state"


def test_single_op_rejection_carries_trace():
    store = ObjectStore(explainlab_schema())
    with store.transaction():
        publisher = store.insert("Publisher", name="P")
        store.insert(
            "Item", title="t", isbn="a", price=1, publisher=publisher
        )
    with pytest.raises(ConstraintViolation) as excinfo:
        store.insert(
            "Item", title="bad", isbn="b", price=-5, publisher=publisher
        )
    exc = excinfo.value
    assert exc.trace is not None and exc.trace.events
    assert any(
        event.kind == "attr" and event.detail == "price"
        for event in exc.trace.events
    )
    assert store.audit() == []


def test_explain_off_disables_cores_but_not_enforcement():
    store = ObjectStore(explainlab_schema(), explain=False)
    with store.transaction():
        publisher = store.insert("Publisher", name="Referenced")
        store.insert(
            "Item", title="t", isbn="a", price=1, publisher=publisher
        )
    with pytest.raises(ConstraintViolation) as excinfo:
        with store.transaction():
            store.insert("Publisher", name="Ghost")
    assert excinfo.value.cores == ()
    assert store.audit() == []


# ---------------------------------------------------------------------------
# CLI: repro explain
# ---------------------------------------------------------------------------


def test_cli_explain_demo_covers_every_violation_class(capsys):
    from repro.cli import main

    code = main(["explain", "--demo"])
    out = capsys.readouterr().out
    assert code == 1
    # object, membership, key, aggregate, referential/quantified
    for name in ("oc1", "oc2", "cc1", "cc2", "db1"):
        assert name in out, f"demo must produce a core for {name}"
    assert "removing any one member" in out


def test_cli_explain_demo_trace_flag(capsys):
    from repro.cli import main

    code = main(["explain", "--demo", "--trace"])
    out = capsys.readouterr().out
    assert code == 1
    assert "isolated-check trace:" in out


def test_cli_explain_durable_store(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "db"
    store = ObjectStore.open(path, schema=explainlab_schema(), enforce=False)
    store.insert("Publisher", name="Ghost")
    store.close()
    code = main(["explain", str(path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "db_ref" in out and "conflict core" in out


def test_cli_explain_clean_store(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "db"
    store = ObjectStore.open(path, schema=explainlab_schema(), enforce=False)
    publisher = store.insert("Publisher", name="P")
    store.insert("Item", title="t", isbn="a", price=1, publisher=publisher)
    store.close()
    code = main(["explain", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "nothing to explain" in out
