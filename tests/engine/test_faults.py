"""Fault-injection tests: the crash matrix, fail-stop semantics, and fsck.

The tentpole property: for arbitrary mutation histories and arbitrary
schedules of injected IO faults (torn writes, bit rot, ENOSPC, failed
fsyncs, crashes at renames), reopening the directory recovers *exactly a
committed state of the history* — never a partial mutation, never a state
the history did not pass through — and ``fsck`` detects every corruption
class the injector can produce.

Marked ``faults`` so CI can run the matrix as a dedicated job
(``REPRO_FAULTS=1`` raises the example count); the whole module also runs
in the tier-1 suite at the default count.
"""

import os
import shutil
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ObjectStore
from repro.engine.faults import (
    FaultInjector,
    FaultSpec,
    SimulatedCrash,
    classify_os_error,
    flip_byte,
)
from repro.engine.wal import fsck, scan_log
from repro.errors import ConstraintViolation, EngineError, StorePoisonedError
from repro.tm import parse_database

pytestmark = pytest.mark.faults

#: Schema with single-object commits (no database constraint forcing
#: transactions), for tests that want one append/flush/fsync per insert.
FLAT_SCHEMA_SOURCE = """
Database FaultDB

Class Item
attributes
  name  : string
  price : real
object constraints
  oc1: price >= 0
class constraints
  cc1: key name
end Item
"""

#: Schema with a referential database constraint, so histories mix
#: transactions, aborts and nested brackets (mirrors test_wal.py).
PAIR_SCHEMA_SOURCE = """
Database WalDB

Class Item
attributes
  name  : string
  price : real
object constraints
  oc1: price >= 0
class constraints
  cc1: key name
end Item

Class Order
attributes
  item : Item
  qty  : int
object constraints
  oc2: qty >= 1
end Order

Database constraints
  db1: forall i in Item exists o in Order | o.item = i
"""


def flat_schema():
    return parse_database(FLAT_SCHEMA_SOURCE)


def pair_schema():
    return parse_database(PAIR_SCHEMA_SOURCE)


def store_state(store):
    return {
        obj.oid: (obj.class_name, dict(obj.state)) for obj in store.objects()
    }


def insert_pair(store, name, price=10.0, qty=1):
    with store.transaction():
        item = store.insert("Item", name=name, price=price)
        order = store.insert("Order", item=item, qty=qty)
    return item, order


#: Everything an injected fault can surface as at the API boundary.
#: ``StorePoisonedError`` is an ``EngineError``; ``SimulatedCrash`` is a
#: ``BaseException`` so nothing in the stack can swallow it.
FAULT_EXCEPTIONS = (OSError, EngineError, SimulatedCrash)


class TestFaultPrimitives:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("wal.append", "meteor")

    def test_classification_policy(self):
        import errno

        from repro.engine.faults import UNSUPPORTED_DIR_FSYNC_ERRNOS

        assert classify_os_error(OSError(errno.EINTR, "x")) == "transient"
        assert classify_os_error(OSError(errno.EAGAIN, "x")) == "transient"
        assert classify_os_error(OSError(errno.EIO, "x")) == "fatal"
        assert classify_os_error(OSError(errno.ENOSPC, "x")) == "fatal"
        assert (
            classify_os_error(
                OSError(errno.EINVAL, "x"), UNSUPPORTED_DIR_FSYNC_ERRNOS
            )
            == "unsupported"
        )
        # The unsupported set is opt-in: without it EINVAL is fatal.
        assert classify_os_error(OSError(errno.EINVAL, "x")) == "fatal"

    def test_flip_byte_flips_in_place_and_back(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"abcdef")
        flip_byte(target, 2)
        assert target.read_bytes() == b"ab" + bytes([ord("c") ^ 0xFF]) + b"def"
        flip_byte(target, -4)
        assert target.read_bytes() == b"abcdef"
        with pytest.raises(ValueError, match="past the end"):
            flip_byte(target, 99)

    def test_empty_schedule_is_a_pass_through(self, tmp_path):
        injector = FaultInjector()
        target = tmp_path / "log"
        with open(target, "wb") as handle:
            injector.write(handle, b"payload", "wal.append")
            injector.flush(handle, "wal.flush")
            injector.fsync(handle.fileno(), "wal.fsync")
        assert target.read_bytes() == b"payload"
        assert injector.fired == [] and not injector.crashed
        # The no-op fast path does not even count crossings.
        assert injector.hits("wal.append") == 0

    def test_schedule_fires_at_the_named_crossing_only(self, tmp_path):
        spec = FaultSpec("wal.append", "io_error", at=1)
        injector = FaultInjector([spec])
        with open(tmp_path / "log", "wb") as handle:
            injector.write(handle, b"a", "wal.append")
            with pytest.raises(OSError, match="injected"):
                injector.write(handle, b"b", "wal.append")
            injector.write(handle, b"c", "wal.append")
        assert injector.fired == [spec]
        assert injector.hits("wal.append") == 3

    def test_byte_kinds_refuse_non_write_points(self, tmp_path):
        injector = FaultInjector([FaultSpec("wal.flush", "torn")])
        with open(tmp_path / "log", "wb") as handle:
            with pytest.raises(ValueError, match="write points"):
                injector.flush(handle, "wal.flush")


class TestAppendRollback:
    """A WAL append/flush failure mid-commit rolls the in-memory mutation
    back: memory never runs ahead of the durable prefix."""

    def test_failed_append_rolls_back_insert_and_poisons(self, tmp_path):
        injector = FaultInjector([FaultSpec("wal.append", "enospc", at=1)])
        store = ObjectStore.open(
            tmp_path / "db", schema=flat_schema(), faults=injector
        )
        store.insert("Item", name="kept", price=1.0)
        with pytest.raises(OSError, match="injected"):
            store.insert("Item", name="lost", price=2.0)
        names = {obj.state["name"] for obj in store.objects()}
        assert names == {"kept"}
        assert "append failed" in store.wal.poisoned
        with pytest.raises(StorePoisonedError):
            store.insert("Item", name="after", price=3.0)
        store.close()
        recovered = ObjectStore.open(tmp_path / "db")
        assert {o.state["name"] for o in recovered.objects()} == {"kept"}
        assert recovered.check_all() == []
        recovered.close()

    def test_failed_update_and_delete_roll_back(self, tmp_path):
        # Each iteration gets a fresh store, so the doomed mutation is
        # always append crossing 2 (after the two setup inserts).
        for label, mutate in (
            ("update", lambda s, o: s.update(o, price=9.0)),
            ("delete", lambda s, o: s.delete(o)),
        ):
            injector = FaultInjector([FaultSpec("wal.append", "io_error", at=2)])
            path = tmp_path / f"db-{label}"
            store = ObjectStore.open(
                path, schema=flat_schema(), faults=injector
            )
            store.insert("Item", name="a", price=1.0)
            obj = store.insert("Item", name="b", price=2.0)
            before = store_state(store)
            with pytest.raises(OSError):
                mutate(store, obj)
            assert store_state(store) == before, label
            store.close()

    def test_failed_commit_marker_undoes_whole_transaction(self, tmp_path):
        # Appends of one pair: begin(0), item(1), order(2), commit(3).
        injector = FaultInjector([FaultSpec("wal.append", "io_error", at=3)])
        store = ObjectStore.open(
            tmp_path / "db", schema=pair_schema(), faults=injector
        )
        with pytest.raises(OSError, match="injected"):
            insert_pair(store, "doomed")
        assert store_state(store) == {}
        assert store.wal.poisoned is not None
        store.close()
        recovered = ObjectStore.open(tmp_path / "db")
        assert store_state(recovered) == {}
        recovered.close()

    def test_failed_set_constant_restores_binding(self, tmp_path):
        source = FLAT_SCHEMA_SOURCE.replace(
            "Database FaultDB\n", "Database FaultDB\n\nconstants\n  MAX = 10\n"
        )
        injector = FaultInjector([FaultSpec("wal.append", "enospc", at=0)])
        store = ObjectStore.open(
            tmp_path / "db", schema=parse_database(source), faults=injector
        )
        with pytest.raises(OSError):
            store.set_constant("MAX", 99)
        assert store.schema.constants["MAX"] == 10
        store.close()


class TestPoisonSemantics:
    """Fail-stop: a failed commit-point fsync poisons the log — never
    retried — and the store degrades to read-only while snapshots keep
    being served."""

    def _poisoned_store(self, path):
        injector = FaultInjector([FaultSpec("wal.fsync", "io_error", at=1)])
        store = ObjectStore.open(
            path, schema=flat_schema(), sync=True, faults=injector
        )
        store.insert("Item", name="durable", price=1.0)
        with pytest.raises(StorePoisonedError, match="never retried"):
            store.insert("Item", name="flushed", price=2.0)
        return store, injector

    def test_mutations_fail_reads_survive_close_returns(self, tmp_path):
        store, injector = self._poisoned_store(tmp_path / "db")
        assert "fsync" in store.wal.poisoned
        # Every mutation class fails fast with StorePoisonedError.
        obj = next(iter(store.objects()))
        with pytest.raises(StorePoisonedError):
            store.insert("Item", name="more", price=3.0)
        with pytest.raises(StorePoisonedError):
            store.update(obj, price=5.0)
        with pytest.raises(StorePoisonedError):
            store.delete(obj)
        with pytest.raises(StorePoisonedError):
            store.set_constant("MAX", 1)
        with pytest.raises(StorePoisonedError):
            with store.transaction():
                pass
        # Reads are still served: live scans and MVCC snapshots alike.
        assert {o.state["name"] for o in store.objects()} == {
            "durable",
            "flushed",
        }
        with store.snapshot() as snap:
            assert len(snap.extent("Item")) == 2
        # close() neither raises nor hangs on the poisoned log.
        store.close()

    def test_fsync_is_never_retried(self, tmp_path):
        store, injector = self._poisoned_store(tmp_path / "db")
        failures = injector.hits("wal.fsync")
        for _ in range(3):
            with pytest.raises(StorePoisonedError):
                store.insert("Item", name="retry-bait", price=1.0)
        # The rejected mutations never reached another fsync attempt.
        assert injector.hits("wal.fsync") == failures
        store.close()
        assert injector.hits("wal.fsync") == failures

    def test_reopen_recovers_the_flushed_prefix(self, tmp_path):
        store, _ = self._poisoned_store(tmp_path / "db")
        store.close()
        # The simulated fsync failure did not wipe the OS page cache, so
        # the flushed-but-unsynced record is still in the file; recovery
        # replays whatever prefix the "disk" holds — here, both inserts.
        recovered = ObjectStore.open(tmp_path / "db")
        assert {o.state["name"] for o in recovered.objects()} == {
            "durable",
            "flushed",
        }
        assert recovered.check_all() == []
        recovered.close()


class TestGroupCommitPoisonPropagation:
    def test_all_waiters_fail_when_the_leader_fsync_dies(self, tmp_path):
        """Satellite regression: with the leader's fsync dead, followers
        must raise StorePoisonedError — not hang, not falsely succeed,
        not elect themselves leader and retry the fsync."""
        injector = FaultInjector([FaultSpec("wal.fsync", "io_error", at=0)])
        store = ObjectStore.open(
            tmp_path / "db",
            schema=flat_schema(),
            sync=True,
            faults=injector,
        )
        barrier = threading.Barrier(2)
        outcomes: dict[int, BaseException | str] = {}

        def committer(slot):
            barrier.wait()
            try:
                store.insert("Item", name=f"n{slot}", price=1.0)
                outcomes[slot] = "committed"
            except BaseException as exc:
                outcomes[slot] = exc

        threads = [
            threading.Thread(target=committer, args=(slot,), daemon=True)
            for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads), "waiter hung"
        assert sorted(outcomes) == [0, 1]
        for outcome in outcomes.values():
            assert isinstance(outcome, StorePoisonedError), outcome
        # Exactly one fsync was ever attempted: no follower re-led.
        assert injector.hits("wal.fsync") == 1
        store.close()

    def test_already_durable_waiters_succeed_past_later_poison(self, tmp_path):
        """A ticket covered by a completed fsync is durable no matter what
        happens afterwards."""
        injector = FaultInjector([FaultSpec("wal.fsync", "io_error", at=1)])
        store = ObjectStore.open(
            tmp_path / "db",
            schema=flat_schema(),
            sync=True,
            faults=injector,
        )
        store.insert("Item", name="first", price=1.0)  # fsync 0 succeeds
        with pytest.raises(StorePoisonedError):
            store.insert("Item", name="second", price=2.0)
        # Redeeming the already-synced ticket again must not raise.
        store.wal.wait_durable(0)
        store.close()


class TestResumeAndCloseWindows:
    """Satellite: every crash window inside resume-time tail truncation
    leaves the committed prefix recoverable."""

    def _crashed_dir(self, tmp_path):
        """A directory captured mid-transaction: committed pair 'keep'
        plus a flushed-but-unterminated bracket (needs resume truncation)."""
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=pair_schema())
        insert_pair(store, "keep")
        with store.transaction():
            item = store.insert("Item", name="wip", price=1.0)
            store.insert("Order", item=item, qty=1)
            store.wal.flush()
            crashed = tmp_path / "crashed"
            crashed.mkdir()
            shutil.copyfile(path / "snapshot.json", crashed / "snapshot.json")
            shutil.copyfile(path / "wal.jsonl", crashed / "wal.jsonl")
        store.close()
        return crashed

    def _assert_recovers_keep(self, path):
        recovered = ObjectStore.open(path)
        assert {
            o.state["name"]
            for o in recovered.objects()
            if o.class_name == "Item"
        } == {"keep"}
        assert recovered.check_all() == []
        recovered.close()

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec("wal.resume_truncate", "crash"),
            FaultSpec("wal.resume_truncate", "crash_after"),
            FaultSpec("wal.resume_fsync", "crash"),
        ],
        ids=["before-truncate", "after-truncate", "at-fsync"],
    )
    def test_crash_during_resume_truncation_is_recoverable(
        self, tmp_path, spec
    ):
        crashed = self._crashed_dir(tmp_path)
        with pytest.raises(SimulatedCrash):
            ObjectStore.open(crashed, faults=FaultInjector([spec]))
        self._assert_recovers_keep(crashed)

    def test_io_error_during_resume_truncation_fails_the_open(self, tmp_path):
        crashed = self._crashed_dir(tmp_path)
        injector = FaultInjector([FaultSpec("wal.resume_truncate", "io_error")])
        with pytest.raises(OSError, match="injected"):
            ObjectStore.open(crashed, faults=injector)
        self._assert_recovers_keep(crashed)

    def test_close_after_poison_leaves_a_recoverable_directory(self, tmp_path):
        injector = FaultInjector([FaultSpec("wal.append", "enospc", at=2)])
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=flat_schema(), faults=injector)
        store.insert("Item", name="a", price=1.0)
        store.insert("Item", name="b", price=2.0)
        with pytest.raises(OSError):
            store.insert("Item", name="c", price=3.0)
        store.close()  # poisoned close: skips the flush, must not raise
        recovered = ObjectStore.open(path)
        assert {o.state["name"] for o in recovered.objects()} == {"a", "b"}
        recovered.close()


class TestDirectoryFsyncClassification:
    """Satellite: directory-fsync errors are classified (and counted),
    not silently swallowed."""

    def test_unsupported_is_counted_and_skipped(self, tmp_path):
        injector = FaultInjector([FaultSpec("dir.fsync", "unsupported")])
        store = ObjectStore.open(
            tmp_path / "db", schema=flat_schema(), faults=injector
        )
        assert store.wal.telemetry.get("dir_fsync_unsupported", 0) >= 1
        store.insert("Item", name="works", price=1.0)
        store.close()

    def test_transient_is_retried_and_counted(self, tmp_path):
        injector = FaultInjector([FaultSpec("dir.fsync", "transient")])
        store = ObjectStore.open(
            tmp_path / "db", schema=flat_schema(), faults=injector
        )
        assert store.wal.telemetry.get("dir_fsync_retries", 0) >= 1
        assert store.wal.poisoned is None
        store.close()

    def test_fatal_raises_instead_of_swallowing(self, tmp_path):
        injector = FaultInjector([FaultSpec("dir.fsync", "io_error")])
        with pytest.raises(OSError, match="injected"):
            ObjectStore.open(
                tmp_path / "db", schema=flat_schema(), faults=injector
            )


class TestFsck:
    """The scrubber detects every corruption class the injector produces,
    never mutates, and grades clean/truncatable/fatal correctly."""

    def _populated(self, tmp_path, name="db"):
        path = tmp_path / name
        store = ObjectStore.open(path, schema=pair_schema())
        insert_pair(store, "one")
        store.checkpoint()
        insert_pair(store, "two")
        store.close()
        return path

    def _freeze(self, path):
        return {
            child.name: child.read_bytes() for child in sorted(path.iterdir())
        }

    def test_clean_store(self, tmp_path):
        path = self._populated(tmp_path)
        report = fsck(path)
        assert report.status == "clean" and report.exit_code == 0
        assert report.findings == []
        assert report.objects == 4 and report.frames_valid > 0

    def test_fsck_never_mutates(self, tmp_path):
        path = self._populated(tmp_path)
        flip_byte(path / "wal.jsonl", 4)
        before = self._freeze(path)
        fsck(path)
        assert self._freeze(path) == before

    def test_torn_log_tail(self, tmp_path):
        path = self._populated(tmp_path)
        log = path / "wal.jsonl"
        log.write_bytes(log.read_bytes()[:-4])
        report = fsck(path)
        assert report.status == "truncatable" and report.exit_code == 1
        assert any("torn or corrupt frame" in f for f in report.findings)

    def test_bit_flipped_log_frame(self, tmp_path):
        path = self._populated(tmp_path)
        flip_byte(path / "wal.jsonl", 2)  # inside the first frame's CRC
        report = fsck(path)
        assert report.status == "truncatable"
        assert report.frames_valid == 0

    def test_bit_flipped_snapshot_with_fallback(self, tmp_path):
        path = self._populated(tmp_path)
        flip_byte(path / "snapshot.json", -10)
        report = fsck(path)
        assert report.status == "truncatable"
        assert any("falls back" in f for f in report.findings)

    def test_digest_mismatch_on_valid_json(self, tmp_path):
        # Bit rot that still parses as JSON: only the digest catches it.
        path = self._populated(tmp_path)
        snapshot = path / "snapshot.json"
        data = snapshot.read_bytes()
        mutated = data.replace(b'"counter":', b'"counter_":', 1)
        assert mutated != data
        snapshot.write_bytes(mutated)
        report = fsck(path)
        assert report.status == "truncatable"
        assert any("digest mismatch" in f for f in report.findings)

    def test_both_snapshots_damaged_is_fatal(self, tmp_path):
        path = self._populated(tmp_path)
        flip_byte(path / "snapshot.json", -10)
        flip_byte(path / "snapshot.prev.json", -10)
        report = fsck(path)
        assert report.status == "fatal" and report.exit_code == 2
        assert any("no intact fallback" in f for f in report.findings)

    def test_missing_snapshot_with_fallback(self, tmp_path):
        path = self._populated(tmp_path)
        (path / "snapshot.json").unlink()
        report = fsck(path)
        assert report.status == "truncatable"
        assert any("rotation" in f for f in report.findings)

    def test_damaged_fallback_alone_degrades(self, tmp_path):
        path = self._populated(tmp_path)
        flip_byte(path / "snapshot.prev.json", -10)
        report = fsck(path)
        assert report.status == "truncatable"
        assert any("fallback protection lost" in f for f in report.findings)

    def test_uncommitted_transaction_tail(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=pair_schema())
        insert_pair(store, "keep")
        with store.transaction():
            item = store.insert("Item", name="wip", price=1.0)
            store.insert("Order", item=item, qty=1)
            store.wal.flush()
            frozen = tmp_path / "frozen"
            frozen.mkdir()
            shutil.copyfile(path / "snapshot.json", frozen / "snapshot.json")
            shutil.copyfile(path / "wal.jsonl", frozen / "wal.jsonl")
        store.close()
        report = fsck(frozen)
        assert report.status == "truncatable"
        assert any("uncommitted transaction tail" in f for f in report.findings)
        assert report.tail_bytes > 0

    def test_empty_directory_and_bare_log_are_fatal(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert fsck(empty).status == "fatal"
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "wal.jsonl").write_bytes(b"")
        report = fsck(bare)
        assert report.status == "fatal"
        assert any("replay" in f for f in report.findings)

    def test_fsck_matches_recovery_for_every_injected_corruption(
        self, tmp_path
    ):
        """fsck's verdict agrees with what ObjectStore.open then does:
        truncatable directories reopen to a clean store, fatal ones
        refuse."""
        recipes = {
            "torn": lambda p: (p / "wal.jsonl").write_bytes(
                (p / "wal.jsonl").read_bytes()[:-3]
            ),
            "log-rot": lambda p: flip_byte(p / "wal.jsonl", 2),
            "snapshot-rot": lambda p: flip_byte(p / "snapshot.json", -10),
            "half-rotation": lambda p: (p / "snapshot.json").unlink(),
            "double-rot": lambda p: (
                flip_byte(p / "snapshot.json", -10),
                flip_byte(p / "snapshot.prev.json", -10),
            ),
        }
        for name, corrupt in recipes.items():
            path = self._populated(tmp_path, name)
            corrupt(path)
            report = fsck(path)
            assert report.status in ("truncatable", "fatal"), name
            if report.status == "truncatable":
                recovered = ObjectStore.open(path)
                assert recovered.check_all() == []
                recovered.close()
                # Reopen repaired the damage: the directory scrubs clean
                # (modulo a fallback not yet re-rotated by a checkpoint).
                after = fsck(path)
                assert after.status in ("clean", "truncatable"), name
                assert after.exit_code <= report.exit_code
            else:
                with pytest.raises(EngineError):
                    ObjectStore.open(path)


# ---------------------------------------------------------------------------
# the crash matrix
# ---------------------------------------------------------------------------

#: Fault points exercised by the matrix.  Snapshot *content* corruption
#: (bit rot on snapshot files) is covered separately by TestFsck — in the
#: matrix every fault is either loud (errno), a crash, or log-byte damage
#: the CRC framing catches, so recovery is always expected to succeed.
_MATRIX_POINTS = [
    "wal.append",
    "wal.flush",
    "wal.fsync",
    "snapshot.fsync",
    "snapshot.replace",
    "snapshot.retain",
    "dir.fsync",
    "log.reset_fsync",
    "log.reset_replace",
]

_ERRNO_KINDS = [
    "enospc",
    "io_error",
    "transient",
    "unsupported",
    "crash",
    "crash_after",
]

_generic_faults = st.builds(
    FaultSpec,
    point=st.sampled_from(_MATRIX_POINTS),
    kind=st.sampled_from(_ERRNO_KINDS),
    at=st.integers(0, 8),
)
_write_faults = st.builds(
    FaultSpec,
    point=st.just("wal.append"),
    kind=st.sampled_from(["torn", "bit_flip"]),
    at=st.integers(0, 8),
    arg=st.integers(0, 64),
)
_schedules = st.lists(st.one_of(_generic_faults, _write_faults), max_size=3)

_steps = st.lists(
    st.tuples(
        st.sampled_from(["pair", "update", "delete", "txn"]),
        st.integers(0, 5),
        st.integers(1, 4),
        st.booleans(),
    ),
    max_size=8,
)

_MATRIX_EXAMPLES = 120 if os.environ.get("REPRO_FAULTS") else 25


def _apply_step(store, step):
    kind, index, qty, abort = step
    if kind == "pair":
        insert_pair(store, f"item-{index}", price=float(index), qty=qty)
    elif kind == "update":
        orders = store.extent("Order")
        if orders:
            store.update(orders[index % len(orders)], qty=qty)
    elif kind == "delete":
        items = store.extent("Item")
        if items:
            victim = items[index % len(items)]
            with store.transaction():
                for order in store.extent("Order"):
                    if order.state["item"] == victim.oid:
                        store.delete(order)
                store.delete(victim)
    elif kind == "txn":
        with store.transaction():
            insert_pair(store, f"txn-{index}", price=1.0, qty=qty)
            if abort:
                raise RuntimeError("scripted abort")


class TestCrashMatrix:
    """Tentpole property: arbitrary histories × arbitrary fault schedules
    never lose a committed prefix and never resurrect uncommitted work."""

    @settings(max_examples=_MATRIX_EXAMPLES, deadline=None)
    @given(steps=_steps, schedule=_schedules)
    def test_recovery_always_yields_a_committed_state(self, steps, schedule):
        base = Path(tempfile.mkdtemp(prefix="repro-faults-"))
        try:
            self._run_one(base / "db", steps, schedule)
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def _run_one(self, path, steps, schedule):
        injector = FaultInjector(schedule=schedule)
        created = True
        candidates = [{}]
        store = None
        try:
            store = ObjectStore.open(
                path,
                schema=pair_schema(),
                sync=True,
                checkpoint_every=3,
                faults=injector,
            )
        except FAULT_EXCEPTIONS:
            created = False
        if store is not None:
            # A fault-free in-memory shadow runs the same history in
            # lockstep (oid issue is deterministic, so states compare
            # directly).  It supplies the one candidate the real store
            # cannot: a crash *after* the commit marker reached the OS
            # rolls the in-memory mutation back, yet recovery rightly
            # replays the durably committed transaction.
            shadow = ObjectStore(pair_schema(), wal=False)
            candidates = [store_state(store)]
            for step in steps:
                try:
                    _apply_step(shadow, step)
                except (ConstraintViolation, RuntimeError):
                    pass
                shadow_after = store_state(shadow)
                try:
                    _apply_step(store, step)
                    candidates.append(store_state(store))
                except (ConstraintViolation, RuntimeError):
                    candidates.append(store_state(store))
                except FAULT_EXCEPTIONS:
                    # Two acceptable durable outcomes: the rolled-back
                    # in-memory state (fault before the commit point
                    # decided) and the shadow's post-step state (fault
                    # after the decision — e.g. a crash just past the
                    # flushed commit marker, or a failed commit fsync
                    # whose flushed bytes survive in the page cache).
                    candidates.append(store_state(store))
                    candidates.append(shadow_after)
                    break
                if store.wal.poisoned is not None:
                    break
            try:
                store.close()
            except FAULT_EXCEPTIONS:
                pass

        # Recovery: a fresh process with no injector reopens the directory.
        try:
            recovered = ObjectStore.open(path)
        except EngineError:
            # Unrecoverable is acceptable only when the store's creation
            # itself was interrupted — nothing was ever durably committed.
            assert not created
            return
        try:
            assert store_state(recovered) in candidates
            assert recovered.check_all() == []
            # The full audit also certifies the rebuilt indexes.
            for class_name in ("Item", "Order"):
                indexed = [o.oid for o in recovered.extent(class_name)]
                scanned = sorted(
                    (
                        o.oid
                        for o in recovered.objects()
                        if o.class_name == class_name
                    ),
                    key=lambda oid: int(oid.rsplit("#", 1)[-1]),
                )
                assert indexed == scanned
            # And the scrubber agrees the directory is now recoverable.
            report = fsck(path)
            assert report.status in ("clean", "truncatable")
        finally:
            recovered.close()


class TestDurableCliFaultHandling:
    """Satellite: `repro recover` / `repro snapshot` / `repro fsck` on
    corrupt, empty, and missing durable files."""

    def _populated(self, tmp_path):
        path = tmp_path / "db"
        store = ObjectStore.open(path, schema=pair_schema())
        insert_pair(store, "one")
        store.checkpoint()
        insert_pair(store, "two")
        store.close()
        return path

    def test_fsck_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        assert main(["fsck", str(path)]) == 0
        assert "clean" in capsys.readouterr().out
        log = path / "wal.jsonl"
        log.write_bytes(log.read_bytes()[:-4])
        assert main(["fsck", str(path)]) == 1
        captured = capsys.readouterr()
        assert "truncatable" in captured.out
        assert "torn or corrupt frame" in captured.err
        flip_byte(path / "snapshot.json", -10)
        flip_byte(path / "snapshot.prev.json", -10)
        assert main(["fsck", str(path)]) == 2
        assert "fatal" in capsys.readouterr().out

    def test_fsck_cli_deep_audit(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        assert main(["fsck", str(path), "--deep"]) == 0
        assert "all constraints hold" in capsys.readouterr().out
        # A violating history: deep audit reports it, plain scrub cannot.
        bad = tmp_path / "bad"
        store = ObjectStore.open(bad, schema=pair_schema(), enforce=False)
        store.insert("Item", name="orphan", price=-1.0)
        store.close()
        assert main(["fsck", str(bad)]) == 0
        assert main(["fsck", str(bad), "--deep"]) == 1
        assert "violation" in capsys.readouterr().err

    def test_fsck_cli_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fsck", str(tmp_path / "missing")]) == 2
        assert "no durable store" in capsys.readouterr().err

    def test_recover_survives_torn_log(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        log = path / "wal.jsonl"
        log.write_bytes(log.read_bytes()[:-4])
        assert main(["recover", str(path)]) == 0
        assert "all constraints hold" in capsys.readouterr().out

    def test_recover_warns_on_snapshot_fallback(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        flip_byte(path / "snapshot.json", -10)
        assert main(["recover", str(path)]) == 0
        captured = capsys.readouterr()
        assert "retained previous snapshot" in captured.err

    def test_recover_rejects_unrecoverable_store(self, tmp_path):
        from repro.cli import main

        path = self._populated(tmp_path)
        flip_byte(path / "snapshot.json", -10)
        flip_byte(path / "snapshot.prev.json", -10)
        with pytest.raises(SystemExit, match="cannot open"):
            main(["recover", str(path)])

    def test_recover_empty_log_file(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        (path / "wal.jsonl").write_bytes(b"")
        assert main(["recover", str(path)]) == 0
        assert "recovered" in capsys.readouterr().out

    def test_snapshot_repairs_fallback_directory(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populated(tmp_path)
        (path / "snapshot.json").unlink()
        assert main(["snapshot", str(path)]) == 0
        captured = capsys.readouterr()
        assert "retained previous snapshot" in captured.err
        assert "checkpointed" in captured.out
        # The checkpoint re-established a clean, fully rotated directory.
        assert fsck(path).status == "clean"
        records, _, torn = scan_log((path / "wal.jsonl").read_bytes())
        assert records == [] and not torn
