"""Transaction edge cases: undo-log rollback, nested/re-entrant transactions,
and the dirty-set lifecycle around commit and rollback."""

import pytest

from repro import ObjectStore
from repro.errors import ConstraintViolation
from repro.fixtures import bookseller_store, cslibrary_schema, cslibrary_store


class TestRollbackRestoresExtents:
    def test_failed_deferred_check_restores_extents_and_identity(self):
        store, named = bookseller_store()
        before_publishers = [o.oid for o in store.extent("Publisher", deep=False)]
        before_items = [o.oid for o in store.extent("Item")]
        victim = store.extent("Monograph")[0]
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                store.delete(victim)
                store.update(named["vldb95"], libprice=1.0)
                # Publisher without an Item: db1 fails at commit.
                store.insert("Publisher", name="Ghost", location="Nowhere")
        assert sorted(o.oid for o in store.extent("Publisher", deep=False)) == sorted(
            before_publishers
        )
        assert sorted(o.oid for o in store.extent("Item")) == sorted(before_items)
        # The deleted object is re-registered as the *same* instance, so
        # references held outside the store stay valid.
        assert store.get(victim.oid) is victim
        assert named["vldb95"].state["libprice"] != 1.0

    def test_rollback_of_delete_preserves_extent_order(self):
        store, _ = cslibrary_store()
        before = [obj.oid for obj in store.extent("Publication")]
        first = store.extent("Publication")[0]
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete(first)
                raise RuntimeError("abort")
        assert [obj.oid for obj in store.extent("Publication")] == before

    def test_rollback_of_insert_then_delete(self):
        store, _ = cslibrary_store()
        size = len(store)
        with pytest.raises(RuntimeError):
            with store.transaction():
                obj = store.insert(
                    "Publication",
                    title="ephemeral",
                    isbn="ISBN-E1",
                    publisher="ACM",
                    shopprice=10.0,
                    ourprice=9.0,
                )
                store.delete(obj)
                raise RuntimeError("abort")
        assert len(store) == size
        assert obj.oid not in store

    def test_commit_clears_dirty_state(self):
        store, named = bookseller_store()
        with store.transaction():
            store.update(named["vldb95"], libprice=12.0)
        assert store._delta is None
        assert store._undo is None
        assert not store._deferred


class TestNestedTransactions:
    def test_inner_commit_defers_to_outer(self):
        store, _ = bookseller_store()
        with store.transaction():
            with store.transaction():
                # Violates db1 until the matching Item arrives; the inner
                # commit must not validate.
                publisher = store.insert(
                    "Publisher", name="Morgan", location="SF"
                )
            store.insert(
                "Monograph",
                title="New readings",
                isbn="ISBN-400",
                publisher=publisher,
                authors=frozenset(),
                shopprice=20.0,
                libprice=18.0,
                subjects=frozenset(),
            )
        assert len(store.extent("Publisher", deep=False)) == 4

    def test_inner_rollback_keeps_outer_work(self):
        store, named = bookseller_store()
        with store.transaction():
            store.update(named["vldb95"], libprice=12.5)
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.update(named["vldb95"], libprice=1.0)
                    raise RuntimeError("inner abort")
            # Inner rollback restored the outer transaction's value...
            assert named["vldb95"].state["libprice"] == 12.5
        # ...and the outer commit kept it.
        assert named["vldb95"].state["libprice"] == 12.5

    def test_outer_rollback_undoes_committed_inner(self):
        store, named = bookseller_store()
        original = named["vldb95"].state["libprice"]
        with pytest.raises(RuntimeError):
            with store.transaction():
                with store.transaction():
                    store.update(named["vldb95"], libprice=2.0)
                raise RuntimeError("outer abort")
        assert named["vldb95"].state["libprice"] == original

    def test_outer_commit_validates_inner_violation(self):
        store, _ = bookseller_store()
        size = len(store)
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                with store.transaction():
                    store.insert(
                        "Publisher", name="Lonely", location="Nowhere"
                    )
        assert len(store) == size

    def test_reentrant_sequential_transactions(self):
        store, named = bookseller_store()
        for price in (11.0, 12.0, 13.0):
            with store.transaction():
                store.update(named["vldb95"], libprice=price)
        assert named["vldb95"].state["libprice"] == 13.0

    @staticmethod
    def _reference_index_state(store):
        """White-box image of the db1 reference-count index."""
        reference = store._indexes._references[("Item", "publisher")]
        return (
            dict(reference._counts),
            reference._live_with_ref,
            reference._dangling,
            reference.valid,
        )

    def test_outer_rollback_removes_nested_insert(self):
        """Regression (insert pre-images through the undo merge): an object
        inserted inside an *inner* transaction — whose commit merges its
        undo log outward via ``setdefault`` with a ``None`` pre-image —
        must be removed again when the outer transaction rolls back, with
        store contents, extents, and reference-count indexes all restored."""
        store, named = bookseller_store()
        before_state = {oid: obj.state for oid, obj in store._objects.items()}
        before_extents = {
            name: sorted(oids) for name, oids in store._direct_extents.items()
        }
        before_refs = self._reference_index_state(store)
        with pytest.raises(RuntimeError):
            with store.transaction():
                with store.transaction():
                    publisher = store.insert(
                        "Publisher", name="Morgan", location="SF"
                    )
                    inserted = store.insert(
                        "Monograph",
                        title="Ghost readings",
                        isbn="ISBN-GHOST",
                        publisher=publisher,
                        authors=frozenset(),
                        shopprice=20.0,
                        libprice=18.0,
                        subjects=frozenset(),
                    )
                # The outer transaction also touches the merged-in object:
                # its first-touch pre-image must stay the insert's None.
                store.update(inserted, libprice=17.0)
                raise RuntimeError("outer abort")
        assert publisher.oid not in store
        assert inserted.oid not in store
        assert {oid: obj.state for oid, obj in store._objects.items()} == before_state
        assert {
            name: sorted(oids) for name, oids in store._direct_extents.items()
        } == before_extents
        assert self._reference_index_state(store) == before_refs
        assert [o.oid for o in store.extent("Item")] == sorted(
            (o.oid for o in store.extent("Item")),
            key=lambda oid: int(oid.rsplit("#", 1)[-1]),
        )
        assert store.check_all() == []

    def test_outer_commit_failure_removes_nested_insert(self):
        """Same merge path, but the outer rollback comes from commit-time
        validation failing rather than an exception."""
        store, _ = bookseller_store()
        size = len(store)
        before_refs = self._reference_index_state(store)
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                with store.transaction():
                    store.insert("Publisher", name="Lonely", location="Nowhere")
        assert len(store) == size
        assert self._reference_index_state(store) == before_refs
        assert store.check_all() == []


class TestCommitFailureAttribution:
    def test_commit_failure_carries_structured_violations(self):
        """Regression: a commit-time ``ConstraintViolation("transaction",
        ...)`` must keep the per-constraint findings, not just a joined
        message."""
        store, named = bookseller_store()
        with pytest.raises(ConstraintViolation) as info:
            with store.transaction():
                # Two independent violations: a Publisher without an Item
                # (db1) and a library price above the shop price (Item.oc1).
                store.insert("Publisher", name="Lonely", location="Nowhere")
                store.update(named["vldb95"], libprice=10_000.0)
        exc = info.value
        assert exc.constraint_name == "transaction"
        assert exc.violations, "structured violations were dropped"
        assert "Bookseller.db1" in exc.constraint_names
        assert "Bookseller.Item.oc1" in exc.constraint_names
        for violation in exc.violations:
            assert violation.constraint_name and violation.describe()

    def test_full_revalidation_carries_structured_violations(self):
        """The incremental=False commit path attributes constraints too."""
        store, named = bookseller_store()
        store.incremental = False
        with pytest.raises(ConstraintViolation) as info:
            with store.transaction():
                store.update(named["vldb95"], libprice=10_000.0)
        assert "Bookseller.Item.oc1" in info.value.constraint_names

    def test_single_operation_failure_keeps_plain_attribution(self):
        store, named = bookseller_store()
        with pytest.raises(ConstraintViolation) as info:
            store.update(named["vldb95"], libprice=10_000.0)
        assert info.value.constraint_names == ("Bookseller.Item.oc1",)


class TestUnenforcedStores:
    def test_transaction_on_unenforced_store_skips_validation(self):
        schema = cslibrary_schema()
        store = ObjectStore(schema, enforce=False)
        with store.transaction():
            store.insert(
                "Publication",
                title="Overpriced",
                isbn="X",
                publisher="Basement Press",  # violates oc2, tolerated
                shopprice=1.0,
                ourprice=2.0,
            )
        assert len(store) == 1
        assert store.check_all() != []
