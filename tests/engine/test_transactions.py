"""Transaction edge cases: undo-log rollback, nested/re-entrant transactions,
and the dirty-set lifecycle around commit and rollback."""

import pytest

from repro import ObjectStore
from repro.errors import ConstraintViolation
from repro.fixtures import bookseller_store, cslibrary_schema, cslibrary_store


class TestRollbackRestoresExtents:
    def test_failed_deferred_check_restores_extents_and_identity(self):
        store, named = bookseller_store()
        before_publishers = [o.oid for o in store.extent("Publisher", deep=False)]
        before_items = [o.oid for o in store.extent("Item")]
        victim = store.extent("Monograph")[0]
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                store.delete(victim)
                store.update(named["vldb95"], libprice=1.0)
                # Publisher without an Item: db1 fails at commit.
                store.insert("Publisher", name="Ghost", location="Nowhere")
        assert sorted(o.oid for o in store.extent("Publisher", deep=False)) == sorted(
            before_publishers
        )
        assert sorted(o.oid for o in store.extent("Item")) == sorted(before_items)
        # The deleted object is re-registered as the *same* instance, so
        # references held outside the store stay valid.
        assert store.get(victim.oid) is victim
        assert named["vldb95"].state["libprice"] != 1.0

    def test_rollback_of_delete_preserves_extent_order(self):
        store, _ = cslibrary_store()
        before = [obj.oid for obj in store.extent("Publication")]
        first = store.extent("Publication")[0]
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete(first)
                raise RuntimeError("abort")
        assert [obj.oid for obj in store.extent("Publication")] == before

    def test_rollback_of_insert_then_delete(self):
        store, _ = cslibrary_store()
        size = len(store)
        with pytest.raises(RuntimeError):
            with store.transaction():
                obj = store.insert(
                    "Publication",
                    title="ephemeral",
                    isbn="ISBN-E1",
                    publisher="ACM",
                    shopprice=10.0,
                    ourprice=9.0,
                )
                store.delete(obj)
                raise RuntimeError("abort")
        assert len(store) == size
        assert obj.oid not in store

    def test_commit_clears_dirty_state(self):
        store, named = bookseller_store()
        with store.transaction():
            store.update(named["vldb95"], libprice=12.0)
        assert store._delta is None
        assert store._undo is None
        assert not store._deferred


class TestNestedTransactions:
    def test_inner_commit_defers_to_outer(self):
        store, _ = bookseller_store()
        with store.transaction():
            with store.transaction():
                # Violates db1 until the matching Item arrives; the inner
                # commit must not validate.
                publisher = store.insert(
                    "Publisher", name="Morgan", location="SF"
                )
            store.insert(
                "Monograph",
                title="New readings",
                isbn="ISBN-400",
                publisher=publisher,
                authors=frozenset(),
                shopprice=20.0,
                libprice=18.0,
                subjects=frozenset(),
            )
        assert len(store.extent("Publisher", deep=False)) == 4

    def test_inner_rollback_keeps_outer_work(self):
        store, named = bookseller_store()
        with store.transaction():
            store.update(named["vldb95"], libprice=12.5)
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.update(named["vldb95"], libprice=1.0)
                    raise RuntimeError("inner abort")
            # Inner rollback restored the outer transaction's value...
            assert named["vldb95"].state["libprice"] == 12.5
        # ...and the outer commit kept it.
        assert named["vldb95"].state["libprice"] == 12.5

    def test_outer_rollback_undoes_committed_inner(self):
        store, named = bookseller_store()
        original = named["vldb95"].state["libprice"]
        with pytest.raises(RuntimeError):
            with store.transaction():
                with store.transaction():
                    store.update(named["vldb95"], libprice=2.0)
                raise RuntimeError("outer abort")
        assert named["vldb95"].state["libprice"] == original

    def test_outer_commit_validates_inner_violation(self):
        store, _ = bookseller_store()
        size = len(store)
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                with store.transaction():
                    store.insert(
                        "Publisher", name="Lonely", location="Nowhere"
                    )
        assert len(store) == size

    def test_reentrant_sequential_transactions(self):
        store, named = bookseller_store()
        for price in (11.0, 12.0, 13.0):
            with store.transaction():
                store.update(named["vldb95"], libprice=price)
        assert named["vldb95"].state["libprice"] == 13.0


class TestUnenforcedStores:
    def test_transaction_on_unenforced_store_skips_validation(self):
        schema = cslibrary_schema()
        store = ObjectStore(schema, enforce=False)
        with store.transaction():
            store.insert(
                "Publication",
                title="Overpriced",
                isbn="X",
                publisher="Basement Press",  # violates oc2, tolerated
                shopprice=1.0,
                ourprice=2.0,
            )
        assert len(store) == 1
        assert store.check_all() != []
