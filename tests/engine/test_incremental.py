"""Tests for delta-driven enforcement (repro.engine.incremental): the
constraint-dependency index, dirty sets, and incremental-vs-full equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObjectStore
from repro.engine.incremental import ConstraintDependencyIndex, MutationDelta
from repro.errors import ConstraintViolation
from repro.fixtures import bookseller_schema, bookseller_store, cslibrary_schema


def _entry(index, qualified_name):
    for entry in (
        index.object_constraints
        + index.class_constraints
        + index.database_constraints
    ):
        if entry.constraint.qualified_name.endswith(qualified_name):
            return entry
    raise AssertionError(f"no constraint {qualified_name} in index")


class TestDependencyIndex:
    def test_object_constraint_reads_own_attributes(self):
        index = ConstraintDependencyIndex(cslibrary_schema())
        oc1 = _entry(index, "Publication.oc1")  # ourprice <= shopprice
        assert ("Publication", "ourprice") in oc1.attrs
        assert ("Publication", "shopprice") in oc1.attrs
        assert not oc1.universal

    def test_reads_expand_over_subclasses(self):
        index = ConstraintDependencyIndex(cslibrary_schema())
        oc1 = _entry(index, "Publication.oc1")
        # A RefereedPubl is in Publication's extent; changing its ourprice
        # must trigger the inherited constraint.
        assert ("RefereedPubl", "ourprice") in oc1.attrs

    def test_reference_paths_record_foreign_reads(self):
        index = ConstraintDependencyIndex(bookseller_schema())
        oc1 = _entry(index, "Proceedings.oc1")  # publisher.name = 'IEEE' ...
        assert ("Proceedings", "publisher") in oc1.attrs
        assert ("Publisher", "name") in oc1.attrs
        assert ("Publisher", "name") in oc1.foreign_attrs()
        assert "publisher" in oc1.own_attr_names()
        assert "name" not in oc1.own_attr_names()

    def test_key_constraint_reads_extent_and_attributes(self):
        index = ConstraintDependencyIndex(cslibrary_schema())
        cc1 = _entry(index, "Publication.cc1")  # key isbn
        assert ("Publication", "isbn") in cc1.attrs
        assert "Publication" in cc1.extents
        assert "RefereedPubl" in cc1.extents  # deep extent membership

    def test_aggregate_constraint_reads_collection(self):
        index = ConstraintDependencyIndex(cslibrary_schema())
        cc2 = _entry(index, "Publication.cc2")  # sum over ourprice < MAX
        assert ("Publication", "ourprice") in cc2.attrs
        assert "Publication" in cc2.extents

    def test_database_constraint_reads_quantified_extents(self):
        index = ConstraintDependencyIndex(bookseller_schema())
        db1 = _entry(index, "db1")  # forall p in Publisher exists i in Item
        assert "Publisher" in db1.extents
        assert "Item" in db1.extents
        assert "Proceedings" in db1.extents  # subclass membership counts
        assert ("Proceedings", "publisher") in db1.attrs

    def test_index_cached_and_rebuilt_on_schema_change(self):
        schema = cslibrary_schema()
        first = ConstraintDependencyIndex.for_schema(schema)
        assert ConstraintDependencyIndex.for_schema(schema) is first
        schema.set_constant("MAX", 123)
        rebuilt = ConstraintDependencyIndex.for_schema(schema)
        assert rebuilt is not first


class TestDeltaMatching:
    def test_untouched_constraints_not_selected(self):
        schema = cslibrary_schema()
        index = ConstraintDependencyIndex(schema)
        delta = MutationDelta(attrs={("Publication", "title")})
        cc2 = _entry(index, "Publication.cc2")
        cc1 = _entry(index, "Publication.cc1")
        assert not cc2.affected_by(delta)
        assert not cc1.affected_by(delta)

    def test_attribute_touch_selects_reader(self):
        index = ConstraintDependencyIndex(cslibrary_schema())
        delta = MutationDelta(attrs={("RefereedPubl", "ourprice")})
        assert _entry(index, "Publication.cc2").affected_by(delta)

    def test_extent_touch_selects_membership_readers(self):
        index = ConstraintDependencyIndex(bookseller_schema())
        delta = MutationDelta(extents={"Publisher"})
        assert _entry(index, "db1").affected_by(delta)

    def test_merge_accumulates_and_insert_dominates(self):
        a = MutationDelta()
        b = MutationDelta(
            attrs={("C", "x")}, extents={"C"}, objects={"C#1": {"x"}}
        )
        a.objects["C#1"] = None  # inserted here: all attributes dirty
        a.merge(b)
        assert a.objects["C#1"] is None
        assert ("C", "x") in a.attrs and "C" in a.extents


class TestForeignReferenceEnforcement:
    def test_update_of_referenced_object_rechecks_referrers(self):
        """Renaming a publisher so that an existing non-refereed proceedings
        falls under the IEEE-implies-refereed rule is caught, even though the
        mutated object is the Publisher (the seed engine missed this)."""
        store, named = bookseller_store()
        store.insert(
            "Proceedings",
            title="Informal notes",
            isbn="ISBN-777",
            publisher=named["springer"],
            authors=frozenset(),
            shopprice=10.0,
            libprice=9.0,
            **{"ref?": False},
            rating=8,
        )
        with pytest.raises(ConstraintViolation, match="Proceedings.oc1"):
            store.update(named["springer"], name="IEEE")
        assert named["springer"].state["name"] == "Springer"  # rolled back

    def test_delete_violating_referential_constraint_rejected(self):
        store, named = bookseller_store()
        # Deleting a Publisher's last Item breaks db1.
        items_of_acm = [
            obj
            for obj in store.extent("Item")
            if obj.state["publisher"] == named["acm"].oid
        ]
        assert items_of_acm
        for item in items_of_acm[:-1]:
            store.delete(item)
        last = items_of_acm[-1]
        with pytest.raises(ConstraintViolation, match="db1"):
            store.delete(last)
        assert last.oid in store


class TestForeignExtentAndDanglingRefs:
    @staticmethod
    def _schema_with(constraint_source, with_ref=False):
        from repro.constraints.model import Constraint, ConstraintKind
        from repro.constraints.parser import parse_expression
        from repro.tm.schema import DatabaseSchema
        from repro.types.primitives import ClassRef, StringType

        schema = DatabaseSchema("T")
        publisher = schema.new_class("Publisher")
        publisher.add_attribute("name", StringType())
        item = schema.new_class("Item")
        if with_ref:
            item.add_attribute("publisher", ClassRef("Publisher"))
        else:
            item.add_attribute("title", StringType())
        item.add_constraint(
            Constraint(
                "oc", ConstraintKind.OBJECT, parse_expression(constraint_source)
            )
        )
        return schema

    def test_foreign_extent_membership_triggers_recheck(self):
        """An object constraint that reads only another class's *extent*
        (no attributes) must be re-checked when that extent changes."""
        schema = self._schema_with("(count (collect p for p in Publisher)) <= 1")
        store = ObjectStore(schema)
        store.insert("Publisher", name="A")
        store.insert("Item", title="t")
        with pytest.raises(ConstraintViolation, match="Item.oc"):
            store.insert("Publisher", name="B")
        assert len(store.extent("Publisher")) == 1  # rolled back

    def test_self_referencing_class_triggers_referrer_recheck(self):
        """A reference can point back into the owner's own subclass closure
        (``Manager.rep : Employee``); updating the referenced object must
        still re-check referrers."""
        from repro.constraints.model import Constraint, ConstraintKind
        from repro.constraints.parser import parse_expression
        from repro.tm.schema import DatabaseSchema
        from repro.types.primitives import ClassRef, RealType

        schema = DatabaseSchema("Firm")
        employee = schema.new_class("Employee")
        employee.add_attribute("salary", RealType())
        manager = schema.new_class("Manager", parent="Employee")
        manager.add_attribute("rep", ClassRef("Employee"))
        manager.add_constraint(
            Constraint(
                "oc1",
                ConstraintKind.OBJECT,
                parse_expression("salary >= rep.salary"),
            )
        )
        store = ObjectStore(schema)
        worker = store.insert("Employee", salary=50.0)
        store.insert("Manager", salary=60.0, rep=worker)
        with pytest.raises(ConstraintViolation, match="Manager.oc1"):
            store.update(worker, salary=100.0)
        assert worker.state["salary"] == 50.0  # rolled back
        assert store.check_all() == []

    def test_delete_creating_dangling_reference_rejected_cleanly(self):
        """Deleting an object another object's constraint dereferences must
        reject with ConstraintViolation and restore the store — not escape
        with UnknownObjectError over a mutated store."""
        schema = self._schema_with("publisher.name != 'X'", with_ref=True)
        store = ObjectStore(schema)
        publisher = store.insert("Publisher", name="Good")
        store.insert("Item", publisher=publisher)
        with pytest.raises(ConstraintViolation, match="cannot evaluate"):
            store.delete(publisher)
        assert publisher.oid in store

    def test_bare_reference_read_depends_on_target_extent(self):
        """A constraint reading a reference without dereferencing any
        attribute (``publisher = publisher``) still depends on the target
        object's existence: deleting it must be rejected, not leave the
        store dangling."""
        schema = self._schema_with("publisher = publisher", with_ref=True)
        store = ObjectStore(schema)
        publisher = store.insert("Publisher", name="Good")
        store.insert("Item", publisher=publisher)
        with pytest.raises(ConstraintViolation):
            store.delete(publisher)
        assert publisher.oid in store
        assert store.check_all() == []


class TestValidationBaseline:
    def test_constraint_violated_on_empty_store_rejects_first_insert(self):
        """Even the empty store can violate a constraint (``exists``-style);
        incremental enforcement must match the exhaustive path by running a
        full pass before its first delta-driven check."""
        from repro.constraints.model import Constraint, ConstraintKind
        from repro.constraints.parser import parse_expression
        from repro.tm.schema import DatabaseSchema
        from repro.types.primitives import StringType

        schema = DatabaseSchema("S")
        a = schema.new_class("A")
        a.add_attribute("x", StringType())
        b = schema.new_class("B")
        b.add_attribute("y", StringType())
        schema.add_database_constraint(
            Constraint(
                "db1",
                ConstraintKind.DATABASE,
                parse_expression("exists q in B | q.y = q.y"),
            )
        )
        for incremental in (True, False):
            store = ObjectStore(schema, incremental=incremental)
            with pytest.raises(ConstraintViolation):
                store.insert("A", x="1")
            assert len(store) == 0
        # Transactional population satisfies db1 at commit.
        store = ObjectStore(schema)
        with store.transaction():
            store.insert("B", y="ok")
            store.insert("A", x="1")
        assert len(store) == 2

    def test_index_cache_does_not_pin_schemas(self):
        import gc
        import weakref

        from repro.tm.schema import DatabaseSchema

        schema = DatabaseSchema("Ephemeral")
        schema.new_class("C")
        ConstraintDependencyIndex.for_schema(schema)
        ref = weakref.ref(schema)
        del schema
        gc.collect()
        assert ref() is None


class TestSchemaChangeFallback:
    def test_constant_rebind_inside_transaction_falls_back_to_full(self):
        schema = cslibrary_schema()
        store = ObjectStore(schema)
        store.insert(
            "Publication",
            title="A",
            isbn="1",
            publisher="ACM",
            shopprice=60.0,
            ourprice=60.0,
        )
        # Tightening MAX mid-transaction makes the *existing* extent violate
        # cc2; only full revalidation notices, since the delta itself never
        # touched ourprice.
        with pytest.raises(ConstraintViolation, match="cc2"):
            with store.transaction():
                schema.set_constant("MAX", 50)
                store.update(
                    next(iter(store.objects())), title="A, renamed"
                )

    def test_constant_rebind_before_transaction_falls_back_to_full(self):
        """A rebind *between* transactions can invalidate constraints with
        no data delta at all; the next commit must revalidate fully, exactly
        like a non-incremental store would."""
        schema = cslibrary_schema()
        store = ObjectStore(schema)
        obj = store.insert(
            "Publication",
            title="A",
            isbn="1",
            publisher="ACM",
            shopprice=60.0,
            ourprice=60.0,
        )
        schema.set_constant("MAX", 50)  # existing extent now violates cc2
        with pytest.raises(ConstraintViolation, match="cc2"):
            with store.transaction():
                store.update(obj, title="A, renamed")  # delta misses cc2
        assert obj.state["title"] == "A"
        # Per-operation enforcement falls back the same way.
        with pytest.raises(ConstraintViolation, match="cc2"):
            store.update(obj, title="A, renamed")
        # After the schema is repaired, a clean full pass re-baselines and
        # incremental validation resumes.
        schema.set_constant("MAX", 100000)
        assert store.check_all() == []
        store.update(obj, title="A, renamed")
        assert obj.state["title"] == "A, renamed"


class TestIncrementalFullEquivalence:
    """The acceptance property: delta-driven commit validation accepts and
    rejects exactly the same transactions as full revalidation."""

    PUBLISHERS = ("ACM", "IEEE", "Springer", "Nowhere Press")

    @staticmethod
    def _fresh_store(incremental):
        schema = cslibrary_schema()
        schema.set_constant("MAX", 400)  # low ceiling: aggregates can trip
        store = ObjectStore(schema, incremental=incremental)
        store.insert(
            "Publication",
            title="seed",
            isbn="seed-isbn",
            publisher="ACM",
            shopprice=90.0,
            ourprice=80.0,
        )
        return store

    @classmethod
    def _apply(cls, store, ops):
        """Run ``ops`` inside one transaction; returns the violation message
        or None on acceptance."""
        try:
            with store.transaction():
                for kind, a, b, c in ops:
                    extent = store.extent("Publication")
                    if kind == "insert":
                        store.insert(
                            "Publication",
                            title=f"t{a}",
                            isbn=f"isbn-{a}",
                            publisher=cls.PUBLISHERS[b % len(cls.PUBLISHERS)],
                            shopprice=float(c),
                            ourprice=float(c - 5 + (a % 11)),
                        )
                    elif kind == "update" and extent:
                        store.update(
                            extent[a % len(extent)],
                            ourprice=float(c),
                            isbn=f"isbn-{b % 6}",
                        )
                    elif kind == "delete" and extent:
                        store.delete(extent[a % len(extent)])
        except ConstraintViolation:
            return "rejected"
        return None

    @staticmethod
    def _snapshot(store):
        return {
            oid: (obj.class_name, dict(obj.state))
            for oid, obj in ((o.oid, o) for o in store.objects())
        }

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete"]),
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=10, max_value=120),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_commit_verdicts_and_states_match(self, ops):
        incremental = self._fresh_store(incremental=True)
        full = self._fresh_store(incremental=False)
        verdict_incremental = self._apply(incremental, ops)
        verdict_full = self._apply(full, ops)
        assert verdict_incremental == verdict_full
        assert self._snapshot(incremental) == self._snapshot(full)

    def test_referential_equivalence(self):
        """Same accept/reject behaviour on the reference-heavy bookseller
        schema, where db1 couples Publisher and Item extents."""
        for incremental in (True, False):
            store, named = bookseller_store()
            store.incremental = incremental
            with pytest.raises(ConstraintViolation):
                with store.transaction():
                    store.insert(
                        "Publisher", name="Lonely", location="Nowhere"
                    )
            with store.transaction():
                publisher = store.insert(
                    "Publisher", name="Morgan", location="SF"
                )
                store.insert(
                    "Monograph",
                    title="New readings",
                    isbn=f"ISBN-90{int(incremental)}",
                    publisher=publisher,
                    authors=frozenset(),
                    shopprice=20.0,
                    libprice=18.0,
                    subjects=frozenset(),
                )
            assert len(store.extent("Publisher", deep=False)) == 4
