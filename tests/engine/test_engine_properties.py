"""Property-based tests of the engine's enforcement guarantees.

Invariant: after any sequence of attempted operations, the store satisfies
all of its constraints — successful operations preserve consistency,
rejected operations leave the store untouched.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ObjectStore
from repro.errors import ConstraintViolation, EngineError, TypeSystemError
from repro.tm import parse_database

SCHEMA_SOURCE = """
Database PropDB
Class Account
attributes
  number  : string
  balance : real
  level   : 1..5
object constraints
  oc1: balance >= 0
  oc2: level >= 2 implies balance >= 100
class constraints
  cc1: key number
  cc2: (sum (collect x for x in self) over balance) < 10000
end Account
"""


def fresh_store() -> ObjectStore:
    return ObjectStore(parse_database(SCHEMA_SOURCE))


_operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(0, 9),  # account number pool
        st.floats(-200, 6000, allow_nan=False, width=32),
        st.integers(0, 7),  # level (may exceed type range on purpose)
    ),
    max_size=25,
)


class TestEnforcementInvariant:
    @settings(max_examples=50, deadline=None)
    @given(_operations)
    def test_store_always_consistent(self, operations):
        store = fresh_store()
        by_number = {}
        for op, number, balance, level in operations:
            key = f"acc-{number}"
            try:
                if op == "insert":
                    obj = store.insert(
                        "Account",
                        number=key,
                        balance=float(balance),
                        level=level,
                    )
                    by_number[key] = obj
                elif op == "update" and key in by_number:
                    store.update(by_number[key], balance=float(balance))
                elif op == "delete" and key in by_number:
                    store.delete(by_number.pop(key))
            except (ConstraintViolation, TypeSystemError, EngineError):
                pass  # rejected operations must leave the store clean
            assert store.check_all() == [], (op, number, balance, level)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-200, 6000, allow_nan=False, width=32), st.integers(1, 5))
    def test_rejection_is_atomic(self, balance, level):
        """A rejected insert leaves no partial object behind."""
        store = fresh_store()
        before = len(store)
        valid = balance >= 0 and (level < 2 or balance >= 100) and balance < 10000
        try:
            store.insert("Account", number="a", balance=float(balance), level=level)
            assert valid
            assert len(store) == before + 1
        except ConstraintViolation:
            assert not valid
            assert len(store) == before

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(0, 400, allow_nan=False, width=32), min_size=1, max_size=10
        )
    )
    def test_transaction_all_or_nothing(self, balances):
        """A transaction commits iff the final state is globally valid."""
        store = fresh_store()
        total = sum(float(b) for b in balances)
        try:
            with store.transaction():
                for index, balance in enumerate(balances):
                    store.insert(
                        "Account",
                        number=f"t-{index}",
                        balance=float(balance),
                        level=1,
                    )
            assert total < 10000
            assert len(store) == len(balances)
        except ConstraintViolation:
            assert total >= 10000
            assert len(store) == 0
        assert store.check_all() == []
