"""The ``analyze=`` store flag: registration-time rejection and the proof
that redundancy pruning plus the update-pattern dispatch tables never change
an enforcement verdict.

The equivalence property is the acceptance bar of the static-analysis
subsystem: for any operation sequence, a store opened with ``analyze=True``
(pruned hot path) and a plain store (full walk) accept and reject *exactly*
the same operations and end in identical states — in memory and WAL-backed.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.analysis import prunable_constraints
from repro.engine.incremental import ConstraintDependencyIndex
from repro.engine.store import ObjectStore
from repro.errors import ConstraintViolation, SchemaError
from repro.tm.parser import parse_database

_CONTRADICTORY = (
    "Database Broken\n"
    "Class Widget\n"
    "  attributes\n"
    "    size : int\n"
    "  object constraints\n"
    "    oc1 : size > 10 and size < 5\n"
    "end Widget\n"
)

_REDUNDANT = (
    "Database Demo\n"
    "Class Widget\n"
    "  attributes\n"
    "    size : int\n"
    "    label : string\n"
    "  object constraints\n"
    "    oc1 : size >= 3\n"
    "    oc2 : size >= 2\n"
    "    oc3 : size <= 90\n"
    "end Widget\n"
)


class TestAnalyzeRegistration:
    def test_contradictory_schema_rejected_with_position(self):
        with pytest.raises(SchemaError) as excinfo:
            ObjectStore(parse_database(_CONTRADICTORY), analyze=True)
        message = str(excinfo.value)
        assert "static analysis rejected the schema" in message
        assert "Broken.Widget.oc1" in message
        assert "line 6" in message

    def test_default_store_stays_permissive(self):
        store = ObjectStore(parse_database(_CONTRADICTORY))
        with pytest.raises(ConstraintViolation):
            store.insert("Widget", size=7)

    def test_warnings_do_not_block_registration(self):
        store = ObjectStore(parse_database(_REDUNDANT), analyze=True)
        assert store.analyze is True
        store.insert("Widget", size=5, label="ok")

    def test_open_threads_the_flag(self, tmp_path):
        store = ObjectStore.open(
            tmp_path / "s", parse_database(_REDUNDANT), analyze=True
        )
        try:
            assert store.analyze is True
        finally:
            store.close()
        reopened = ObjectStore.open(tmp_path / "s")
        try:
            assert reopened.analyze is False
        finally:
            reopened.close()

    def test_open_rejects_contradictory_schema(self, tmp_path):
        with pytest.raises(SchemaError):
            ObjectStore.open(
                tmp_path / "bad", parse_database(_CONTRADICTORY), analyze=True
            )


class TestDispatchTables:
    def test_single_attribute_update_narrows_the_checks(self):
        schema = parse_database(_REDUNDANT)
        index = ConstraintDependencyIndex(schema)
        insert_names = [
            e.constraint.name for e in index.checks_for("Widget", None)
        ]
        assert insert_names == ["oc1", "oc2", "oc3"]
        size_names = [
            e.constraint.name for e in index.checks_for("Widget", {"size"})
        ]
        assert size_names == ["oc1", "oc2", "oc3"]
        # No constraint reads label: the update table is empty for it.
        assert index.checks_for("Widget", {"label"}) == ()

    def test_multi_attribute_update_unions_the_patterns(self):
        schema = parse_database(_REDUNDANT)
        index = ConstraintDependencyIndex(schema)
        names = [
            e.constraint.name
            for e in index.checks_for("Widget", {"size", "label"})
        ]
        assert names == ["oc1", "oc2", "oc3"]

    def test_unknown_class_falls_back_to_generic_walk(self):
        schema = parse_database(_REDUNDANT)
        index = ConstraintDependencyIndex(schema)
        assert index.checks_for("Gadget", None) is None

    def test_pruned_constraints_cached_on_the_index(self):
        schema = parse_database(_REDUNDANT)
        index = ConstraintDependencyIndex(schema)
        pruned = index.pruned_constraints()
        assert {c.qualified_name for c in pruned} == {"Demo.Widget.oc2"}
        assert index.pruned_constraints() is pruned  # cached

    def test_pruned_set_matches_the_analysis_pass(self):
        schema = parse_database(_REDUNDANT)
        index = ConstraintDependencyIndex(schema)
        assert index.pruned_constraints() == frozenset(
            prunable_constraints(schema)
        )


# ---------------------------------------------------------------------------
# equivalence: pruned hot path ≡ full walk, for any operation sequence
# ---------------------------------------------------------------------------

_op_strategy = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(min_value=0, max_value=100),
        st.sampled_from(["a", "b", "c"]),
    ),
    st.tuples(
        st.just("update"),
        st.integers(min_value=0, max_value=9),  # slot of an earlier insert
        st.integers(min_value=0, max_value=100),
    ),
    st.tuples(
        st.just("update_label"),
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["a", "b", "c"]),
    ),
    st.tuples(
        st.just("delete"),
        st.integers(min_value=0, max_value=9),
        st.just(None),
    ),
)


def _apply(store: ObjectStore, operations) -> tuple[list[str], list[tuple]]:
    """Run the sequence, returning (verdicts, final sorted states)."""
    verdicts: list[str] = []
    oids: list[str] = []
    for op, first, second in operations:
        try:
            if op == "insert":
                obj = store.insert("Widget", size=first, label=second)
                oids.append(obj.oid)
                verdicts.append("ok")
            elif op in ("update", "update_label") and oids:
                target = oids[first % len(oids)]
                if op == "update":
                    store.update(target, size=second)
                else:
                    store.update(target, label=second)
                verdicts.append("ok")
            elif op == "delete" and oids:
                store.delete(oids.pop(first % len(oids)))
                verdicts.append("ok")
            else:
                verdicts.append("skip")
        except ConstraintViolation as exc:
            # The rejecting constraint's name is part of the verdict: pruning
            # must not even change *which* constraint fires first.
            named = re.search(r"Demo\.Widget\.oc\d+", str(exc))
            verdicts.append(f"reject:{named.group(0) if named else exc}")
    states = sorted(
        (obj.state["size"], obj.state["label"]) for obj in store.extent("Widget")
    )
    return verdicts, states


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_op_strategy, min_size=1, max_size=12))
    def test_pruned_store_is_bit_identical_to_plain_store(self, operations):
        schema_a = parse_database(_REDUNDANT)
        schema_b = parse_database(_REDUNDANT)
        plain = ObjectStore(schema_a)
        pruned = ObjectStore(schema_b, analyze=True)
        assert _apply(plain, operations) == _apply(pruned, operations)

    @settings(max_examples=15, deadline=None)
    @given(operations=st.lists(_op_strategy, min_size=1, max_size=8))
    def test_equivalence_holds_wal_backed(self, operations, tmp_path_factory):
        base = tmp_path_factory.mktemp("equiv")
        plain = ObjectStore.open(base / "plain", parse_database(_REDUNDANT))
        pruned = ObjectStore.open(
            base / "pruned", parse_database(_REDUNDANT), analyze=True
        )
        try:
            assert _apply(plain, operations) == _apply(pruned, operations)
        finally:
            plain.close()
            pruned.close()

    def test_audit_never_uses_the_pruned_path(self):
        # Force a state that violates only the *pruned* constraint (possible
        # only by bypassing enforcement) — audits must still convict it.
        schema = parse_database(_REDUNDANT)
        store = ObjectStore(schema, analyze=True, enforce=False)
        store.insert("Widget", size=2, label="x")  # violates oc1, not oc2
        violations = store.check_all()
        assert any("oc1" in v for v in violations)

    def test_pruned_constraint_rejection_comes_from_keeper(self):
        plain = ObjectStore(parse_database(_REDUNDANT))
        pruned = ObjectStore(parse_database(_REDUNDANT), analyze=True)
        for store in (plain, pruned):
            with pytest.raises(ConstraintViolation, match="Demo.Widget.oc1"):
                store.insert("Widget", size=1, label="x")
