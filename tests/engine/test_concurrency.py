"""Concurrent serving: snapshot isolation, group commit, schema records.

The invariants under test:

* a :meth:`ObjectStore.snapshot` view is immutable and committed-only — it
  never observes uncommitted inserts, in-flight transaction states, or the
  re-registration shuffle of a rollback resurrection, and its extents come
  in the same ``(counter, oid)`` order as live extents;
* snapshot acquisition does not serialize behind a writer holding the
  writer lock (once the machinery is active);
* concurrent ``sync=True`` committers coalesce into fewer fsyncs than
  commits (group commit) while recovery still restores exactly the
  committed history;
* schema changes made after the last checkpoint survive recovery via
  schema-change log records instead of silently reverting.

Threaded tests carry the ``concurrency`` marker so CI can run them as a
dedicated job (``pytest -m concurrency``).
"""

import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ObjectStore
from repro.errors import (
    ConstraintViolation,
    EngineError,
    UnknownObjectError,
)
from repro.tm import parse_database

SCHEMA_SOURCE = """
Database ConcDB

Class Item
attributes
  name  : string
  price : real
object constraints
  oc1: price >= 0
end Item
"""


def fresh_store(**kwargs):
    return ObjectStore(parse_database(SCHEMA_SOURCE), **kwargs)


def extent_view(snap):
    """Comparable ordered image of a snapshot's Item extent."""
    return tuple(
        (obj.oid, obj.state["name"], obj.state["price"])
        for obj in snap.extent("Item")
    )


def live_view(store):
    return tuple(
        (obj.oid, obj.state["name"], obj.state["price"])
        for obj in store.extent("Item")
    )


class TestSnapshotIsolation:
    def test_snapshot_reflects_committed_state_and_stays_immutable(self):
        store = fresh_store()
        a = store.insert("Item", name="a", price=1.0)
        before = store.snapshot()
        store.update(a, price=2.0)
        b = store.insert("Item", name="b", price=3.0)
        after = store.snapshot()

        assert before.get(a.oid).state["price"] == 1.0
        assert b.oid not in before
        assert after.get(a.oid).state["price"] == 2.0
        assert extent_view(after) == live_view(store)
        assert len(before) == 1 and len(after) == 2

        store.delete(b)
        assert b.oid in after  # old snapshot unaffected
        assert b.oid not in store.snapshot()

    def test_snapshot_mid_transaction_sees_committed_prestate(self):
        store = fresh_store()
        a = store.insert("Item", name="a", price=1.0)
        with store.transaction():
            store.update(a, price=9.0)
            inserted = store.insert("Item", name="uncommitted", price=5.0)
            snap = store.snapshot()
            assert snap.get(a.oid).state["price"] == 1.0
            assert inserted.oid not in snap
            assert len(snap) == 1
        # After the commit, a fresh snapshot sees it all.
        assert store.snapshot().get(inserted.oid).state["name"] == "uncommitted"

    def test_snapshot_mid_nested_transaction_sees_committed_prestate(self):
        store = fresh_store()
        a = store.insert("Item", name="a", price=1.0)
        with store.transaction():
            store.update(a, price=2.0)
            with store.transaction():
                store.update(a, price=3.0)
                snap = store.snapshot()
                assert snap.get(a.oid).state["price"] == 1.0

    def test_rolled_back_transaction_never_published(self):
        store = fresh_store()
        a = store.insert("Item", name="a", price=1.0)
        before = store.snapshot()
        with pytest.raises(ConstraintViolation):
            with store.transaction():
                store.insert("Item", name="bad", price=-1.0)
        after = store.snapshot()
        assert extent_view(before) == extent_view(after) == live_view(store)
        assert after.version == before.version  # nothing was committed

    def test_rollback_resurrection_keeps_snapshot_extent_order(self):
        store = fresh_store()
        items = [
            store.insert("Item", name=f"i{i}", price=float(i)) for i in range(5)
        ]
        before = store.snapshot()
        order_before = [obj.oid for obj in before.extent("Item")]
        with pytest.raises(RuntimeError):
            with store.transaction():
                # Delete from the middle, then fail: rollback re-registers
                # the deleted objects (appending to the live dict) and must
                # not reorder what any snapshot sees.
                store.delete(items[1])
                store.delete(items[3])
                mid = store.snapshot()
                assert [obj.oid for obj in mid.extent("Item")] == order_before
                raise RuntimeError("boom")
        after = store.snapshot()
        assert [obj.oid for obj in after.extent("Item")] == order_before
        assert [obj.oid for obj in store.extent("Item")] == order_before

    def test_snapshot_dereferences_inside_the_snapshot(self):
        source = SCHEMA_SOURCE + (
            "\nClass Ref\nattributes\n  item : Item\nend Ref\n"
        )
        store = ObjectStore(parse_database(source))
        item = store.insert("Item", name="a", price=1.0)
        ref = store.insert("Ref", item=item)
        snap = store.snapshot()
        store.update(item, price=8.0)
        seen = snap.get_attr(snap.get(ref.oid), "item")
        assert seen.state["price"] == 1.0

    def test_snapshot_unknown_oid_and_class_raise(self):
        store = fresh_store()
        snap = store.snapshot()
        with pytest.raises(UnknownObjectError):
            snap.get("Item#999")
        with pytest.raises(Exception):
            snap.extent("Nope")


@pytest.mark.concurrency
class TestConcurrentReaders:
    def test_snapshot_does_not_block_on_an_open_transaction(self):
        store = fresh_store()
        store.insert("Item", name="seed", price=1.0)
        store.snapshot()  # activate the machinery before the writer starts

        entered = threading.Event()
        release = threading.Event()
        failures = []

        def writer():
            try:
                with store.transaction():
                    store.insert("Item", name="uncommitted", price=2.0)
                    entered.set()
                    release.wait(timeout=30.0)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert entered.wait(timeout=30.0)
        started = time.perf_counter()
        snap = store.snapshot()
        view = extent_view(snap)
        elapsed = time.perf_counter() - started
        release.set()
        thread.join(timeout=30.0)
        assert not failures
        # The read completed while the transaction was still open…
        assert elapsed < 1.0, f"snapshot read blocked for {elapsed:.2f}s"
        # …and saw only the committed object.
        assert [name for _, name, _ in view] == ["seed"]
        assert len(store.snapshot()) == 2

    def test_readers_see_only_committed_prefixes_under_load(self):
        store = fresh_store()
        items = [
            store.insert("Item", name=f"i{i}", price=0.0) for i in range(8)
        ]
        baseline = store.snapshot()
        committed = [extent_view(baseline)]  # index = version
        stop = threading.Event()
        failures = []

        def writer():
            try:
                for step in range(150):
                    with store.transaction():
                        store.update(items[step % 8], price=float(step + 1))
                        if step % 3 == 0:
                            store.update(
                                items[(step + 1) % 8], price=float(step + 1)
                            )
                    committed.append(live_view(store))
            except Exception as exc:
                failures.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    snap = store.snapshot()
                    view = extent_view(snap)
                    # Versions map 1:1 to commits: the view must be exactly
                    # the state the writer recorded for that version.  The
                    # writer appends the record after releasing the lock,
                    # so wait for it to catch up when we raced ahead.
                    for _ in range(1000):
                        if snap.version < len(committed):
                            break
                        time.sleep(0.001)
                    assert view == committed[snap.version], (
                        f"snapshot v{snap.version} saw a state the writer "
                        "never committed"
                    )
            except BaseException as exc:
                failures.append(exc)
                stop.set()

        readers = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        writer_thread.join(timeout=60.0)
        for thread in readers:
            thread.join(timeout=60.0)
        assert not failures, failures[0]
        assert len(committed) == 151

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        history=st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete"]),
                st.integers(min_value=0, max_value=5),
                st.booleans(),  # commit (True) or roll back (False)
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_threaded_histories_expose_only_committed_states(self, history):
        """Hypothesis × threads: arbitrary transactional histories (with
        rollbacks, hence resurrections) against concurrent snapshot
        readers — every observed view is a state some committed prefix
        produced, in extent order."""
        store = fresh_store()
        pool = [
            store.insert("Item", name=f"i{i}", price=0.0) for i in range(6)
        ]
        live = list(pool)
        baseline = store.snapshot()
        committed = [extent_view(baseline)]
        stop = threading.Event()
        failures = []

        def writer():
            try:
                for step, (kind, slot, commit) in enumerate(history):
                    did_something = False
                    try:
                        with store.transaction():
                            if kind == "insert":
                                obj = store.insert(
                                    "Item",
                                    name=f"n{step}",
                                    price=float(step),
                                )
                                did_something = True
                                if commit:
                                    live.append(obj)
                            elif kind == "update" and live:
                                store.update(
                                    live[slot % len(live)],
                                    price=float(step + 100),
                                )
                                did_something = True
                            elif kind == "delete" and live:
                                victim = live[slot % len(live)]
                                store.delete(victim)
                                did_something = True
                                if commit:
                                    live.remove(victim)
                            if not commit:
                                raise RuntimeError("roll back")
                    except RuntimeError:
                        pass
                    else:
                        # Empty transactions publish nothing and bump no
                        # version: only record commits that did work, so
                        # list index == snapshot version stays exact.
                        if did_something:
                            committed.append(live_view(store))
            except Exception as exc:
                failures.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    snap = store.snapshot()
                    view = extent_view(snap)
                    for _ in range(1000):
                        if snap.version < len(committed):
                            break
                        time.sleep(0.001)
                    assert view == committed[snap.version]
            except BaseException as exc:
                failures.append(exc)
                stop.set()

        readers = [
            threading.Thread(target=reader, daemon=True) for _ in range(2)
        ]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        writer_thread.join(timeout=60.0)
        for thread in readers:
            thread.join(timeout=60.0)
        assert not failures, failures[0]


@pytest.mark.concurrency
class TestGroupCommit:
    def test_concurrent_sync_commits_share_fsyncs(self, tmp_path):
        store = ObjectStore.open(
            tmp_path / "db",
            parse_database(SCHEMA_SOURCE),
            sync=True,
            checkpoint_every=0,
        )
        fsyncs_before = store.wal.fsyncs
        commits_before = store.wal.sync_commits
        failures = []

        def committer(slot):
            try:
                for i in range(20):
                    store.insert(
                        "Item", name=f"c{slot}-{i}", price=float(i)
                    )
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=committer, args=(slot,), daemon=True)
            for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not failures, failures[0]

        fsyncs = store.wal.fsyncs - fsyncs_before
        commits = store.wal.sync_commits - commits_before
        assert commits == 160
        # Group commit: concurrent durable commits coalesce — strictly
        # fewer fsyncs than commits (typically far fewer).
        assert fsyncs < commits, (
            f"{fsyncs} fsyncs for {commits} commits — no coalescing"
        )
        store.close()

        recovered = ObjectStore.open(tmp_path / "db")
        assert len(recovered) == 160
        recovered.close()

    def test_solo_commit_pays_no_batching_window(self, tmp_path):
        store = ObjectStore.open(
            tmp_path / "db",
            parse_database(SCHEMA_SOURCE),
            sync=True,
            checkpoint_every=0,
        )
        store.insert("Item", name="warm", price=1.0)
        started = time.perf_counter()
        for i in range(20):
            store.insert("Item", name=f"solo{i}", price=1.0)
        per_commit = (time.perf_counter() - started) / 20
        store.close()
        # A lone committer must fsync immediately: no 1ms-scale batching
        # window on its latency (generous bound for slow CI filesystems).
        assert per_commit < 0.05


class TestDurableSchemaChanges:
    SOURCE = """
Database SchemaDB

constants
  CAP = 100

Class Item
attributes
  name  : string
  price : real
object constraints
  oc1: price <= CAP
end Item
"""

    def _open(self, path, **kwargs):
        return ObjectStore.open(path, parse_database(self.SOURCE), **kwargs)

    def test_set_constant_after_checkpoint_survives_crash(self, tmp_path):
        store = self._open(tmp_path / "db")
        store.insert("Item", name="a", price=10.0)
        store.checkpoint()
        store.set_constant("CAP", 1000)
        store.insert("Item", name="b", price=500.0)  # legal only post-rebind
        del store  # crash: no close, no checkpoint

        recovered = ObjectStore.open(tmp_path / "db")
        assert recovered.schema.constants["CAP"] == 1000
        assert len(recovered) == 2
        info = recovered.recovery_info
        assert info.schema_changes == 1
        assert info.schema_drift is True
        # A checkpoint folds the change in: no drift on the next recovery.
        recovered.checkpoint()
        recovered.close()
        clean = ObjectStore.open(tmp_path / "db")
        assert clean.schema.constants["CAP"] == 1000
        assert clean.recovery_info.schema_drift is False
        clean.close()

    def test_log_schema_change_replays_schema_surgery(self, tmp_path):
        store = self._open(tmp_path / "db")
        store.insert("Item", name="a", price=10.0)
        store.checkpoint()
        # Direct schema surgery the WAL cannot see — then log it wholesale.
        store.schema.set_constant("CAP", 555)
        store.schema.set_constant("FLOOR", 1)
        store.log_schema_change()
        del store

        recovered = ObjectStore.open(tmp_path / "db")
        assert recovered.schema.constants["CAP"] == 555
        assert recovered.schema.constants["FLOOR"] == 1
        assert recovered.recovery_info.schema_drift is True
        recovered.close()

    def test_schema_records_refused_inside_transactions(self, tmp_path):
        store = self._open(tmp_path / "db")
        with store.transaction():
            with pytest.raises(EngineError):
                store.set_constant("CAP", 7)
            with pytest.raises(EngineError):
                store.log_schema_change()
        # The refusal left schema and log consistent.
        assert store.schema.constants["CAP"] == 100
        store.close()
        recovered = ObjectStore.open(tmp_path / "db")
        assert recovered.schema.constants["CAP"] == 100
        recovered.close()

    def test_set_constant_without_checkpoint_still_replays(self, tmp_path):
        store = self._open(tmp_path / "db")
        store.set_constant("CAP", 250)
        store.insert("Item", name="a", price=200.0)
        del store
        recovered = ObjectStore.open(tmp_path / "db")
        assert recovered.schema.constants["CAP"] == 250
        assert len(recovered) == 1
        recovered.close()

    def test_recover_cli_warns_and_strict_fails_on_drift(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "db"
        store = self._open(path)
        store.insert("Item", name="a", price=10.0)
        store.checkpoint()
        store.set_constant("CAP", 1000)
        store.close()

        assert main(["recover", str(path)]) == 0
        err = capsys.readouterr().err
        assert "schema-change record(s) newer than the snapshot" in err

        assert main(["recover", "--strict", str(path)]) == 1

        assert main(["snapshot", str(path)]) == 0
        capsys.readouterr()
        assert main(["recover", "--strict", str(path)]) == 0
        assert "schema-change" not in capsys.readouterr().err
