"""Sharding tests: placement, classification, equivalence, and 2PC recovery.

The tentpole property: a :class:`~repro.engine.sharding.ShardedStore` is
*observably identical* to a plain :class:`~repro.engine.store.ObjectStore`
— for arbitrary operation histories the two accept and reject the same
operations (naming the same constraints), hold the same objects, and audit
to the same verdicts, at every shard count.  Sharding may only change
*where* work happens, never *what* the store does.

The durable half extends the crash matrix of ``test_faults.py`` per shard:
a fault injector targeting one shard's files must never break cross-shard
atomicity — after recovery a two-phase transaction is either applied on
every shard or on none (presumed abort), and the merged store audits
clean.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ObjectStore, ShardedStore, plan_placement
from repro.engine.faults import FaultInjector, FaultSpec, SimulatedCrash
from repro.engine.incremental import (
    SHARD_GLOBAL,
    SHARD_LOCAL,
    SHARD_MERGEABLE,
    classify_constraints,
    shard_scopes,
)
from repro.engine.indexes import oid_shard, oid_sort_key
from repro.engine.sharding import MANIFEST_NAME, shard_directory
from repro.engine.wal import LOG_NAME, fsck, scan_log
from repro.errors import ConstraintViolation, EngineError, ShardingError
from repro.fixtures import bookseller_schema
from repro.tm import parse_database

#: Everything an injected fault can surface as at the API boundary
#: (mirrors ``test_faults.FAULT_EXCEPTIONS``).
FAULT_EXCEPTIONS = (OSError, EngineError, SimulatedCrash)

#: Three reference-free class groups: Alpha and Beta pin to (possibly
#: different) shards, Gauge is a spread candidate.  ``cc_sum`` is
#: shard-local once Alpha is pinned; spreading Gauge makes ``cc_gauge``
#: a mergeable cross-shard aggregate.
SHARDLAB_SOURCE = """
Database ShardLab

constants
  CAP = 1000

Class Alpha
attributes
  name  : string
  score : int
object constraints
  oc_a: score >= 0
class constraints
  cc_key: key name
  cc_sum: (sum (collect x for x in self) over score) < CAP
end Alpha

Class Beta
attributes
  label : string
  value : int
object constraints
  oc_b: value >= 0
end Beta

Class Gauge
attributes
  reading : int
object constraints
  oc_g: reading >= 0
class constraints
  cc_gauge: (sum (collect g for g in self) over reading) < CAP
end Gauge
"""

#: Two unconnected groups coupled only by a quantified database
#: constraint with no covering summary — the global tier.
CROSSDB_SOURCE = """
Database CrossDB

Class Left
attributes
  tag : int
end Left

Class Right
attributes
  tag : int
end Right

Database constraints
  db_cover: forall l in Left exists r in Right | r.tag = l.tag
"""


def shardlab_schema():
    return parse_database(SHARDLAB_SOURCE)


def crossdb_schema():
    return parse_database(CROSSDB_SOURCE)


# ---------------------------------------------------------------------------
# oid helpers
# ---------------------------------------------------------------------------


class TestOidHelpers:
    def test_oid_shard_parses_namespace(self):
        assert oid_shard("Alpha#3.7") == 3
        assert oid_shard("Alpha#7") is None
        assert oid_shard("Alpha#x.7") is None
        assert oid_shard("bogus") is None

    def test_numeric_shard_ordering(self):
        # Shard 10 must sort after shard 2 at the same counter — a string
        # comparison of "10" < "2" would invert round-robin spread order.
        oids = ["G#10.1", "G#2.1", "G#0.2", "G#1.1", "G#0.1"]
        assert sorted(oids, key=oid_sort_key) == [
            "G#0.1",
            "G#1.1",
            "G#2.1",
            "G#10.1",
            "G#0.2",
        ]

    def test_plain_oids_sort_before_sharded_at_same_counter(self):
        assert sorted(["A#0.1", "A#1"], key=oid_sort_key) == ["A#1", "A#0.1"]


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------


class TestPlacement:
    def test_groups_round_robin(self):
        placement = plan_placement(shardlab_schema(), 2)
        # Three singleton groups in declaration order: Alpha, Beta, Gauge.
        assert placement == {"Alpha": 0, "Beta": 1, "Gauge": 0}

    def test_reference_edges_co_locate(self):
        placement = plan_placement(bookseller_schema(), 4)
        # Item/Proceedings/Monograph reference Publisher: one group.
        assert len(set(placement.values())) == 1

    def test_inheritance_co_locates(self):
        placement = plan_placement(bookseller_schema(), 4)
        assert placement["Item"] == placement["Proceedings"]
        assert placement["Item"] == placement["Monograph"]

    def test_spread_class_is_unplaced(self):
        placement = plan_placement(shardlab_schema(), 4, spread=("Gauge",))
        assert "Gauge" not in placement
        assert set(placement) == {"Alpha", "Beta"}

    def test_spread_class_with_references_is_rejected(self):
        with pytest.raises(ShardingError, match="spread"):
            plan_placement(bookseller_schema(), 2, spread=("Item",))

    def test_spread_referenced_class_is_rejected(self):
        with pytest.raises(ShardingError, match="spread"):
            plan_placement(bookseller_schema(), 2, spread=("Publisher",))

    def test_spread_unknown_class_is_rejected(self):
        with pytest.raises(ShardingError):
            plan_placement(shardlab_schema(), 2, spread=("Nope",))

    def test_existing_seed_is_respected(self):
        placement = plan_placement(
            shardlab_schema(), 4, existing={"Alpha": 3, "Beta": 1}
        )
        assert placement["Alpha"] == 3
        assert placement["Beta"] == 1
        assert placement["Gauge"] in range(4)

    def test_existing_out_of_range_is_rejected(self):
        with pytest.raises(ShardingError):
            plan_placement(shardlab_schema(), 2, existing={"Alpha": 5})

    def test_existing_splitting_a_group_is_rejected(self):
        with pytest.raises(ShardingError):
            plan_placement(
                bookseller_schema(), 2, existing={"Item": 0, "Publisher": 1}
            )


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


def _plans_by_name(schema, placement, spread=frozenset()):
    from repro.engine.incremental import ConstraintDependencyIndex

    index = ConstraintDependencyIndex.for_schema(schema)
    plans = classify_constraints(index, placement, spread)
    return {plan.constraint.qualified_name: plan for plan in plans}


class TestClassification:
    def test_pinned_layout_is_all_local(self):
        schema = shardlab_schema()
        placement = plan_placement(schema, 2)
        plans = _plans_by_name(schema, placement)
        assert all(plan.tier == SHARD_LOCAL for plan in plans.values())
        assert plans["ShardLab.Alpha.cc_sum"].shard == placement["Alpha"]
        assert plans["ShardLab.Gauge.cc_gauge"].shard == placement["Gauge"]

    def test_object_constraints_are_anywhere_local(self):
        schema = shardlab_schema()
        plans = _plans_by_name(
            schema, plan_placement(schema, 4, spread=("Gauge",)), {"Gauge"}
        )
        # Reads only the constrained object: local with no pinned shard.
        assert plans["ShardLab.Gauge.oc_g"].tier == SHARD_LOCAL
        assert plans["ShardLab.Gauge.oc_g"].shard is None

    def test_spread_aggregate_is_mergeable(self):
        schema = shardlab_schema()
        plans = _plans_by_name(
            schema, plan_placement(schema, 4, spread=("Gauge",)), {"Gauge"}
        )
        assert plans["ShardLab.Gauge.cc_gauge"].tier == SHARD_MERGEABLE

    def test_cross_shard_quantifier_is_global(self):
        schema = crossdb_schema()
        placement = {"Left": 0, "Right": 1}
        plans = _plans_by_name(schema, placement)
        assert plans["CrossDB.db_cover"].tier == SHARD_GLOBAL

    def test_single_shard_quantifier_is_local(self):
        schema = crossdb_schema()
        plans = _plans_by_name(schema, {"Left": 0, "Right": 0})
        assert plans["CrossDB.db_cover"].tier == SHARD_LOCAL
        assert plans["CrossDB.db_cover"].shard == 0

    def test_scopes_cover_exactly_the_local_tier(self):
        schema = shardlab_schema()
        placement = plan_placement(schema, 2, spread=("Gauge",))
        from repro.engine.incremental import ConstraintDependencyIndex

        index = ConstraintDependencyIndex.for_schema(schema)
        plans = classify_constraints(index, placement, {"Gauge"})
        scopes = shard_scopes(plans, 2)
        merged = scopes[0] | scopes[1]
        local = {p.constraint for p in plans if p.tier == SHARD_LOCAL}
        assert merged == local
        # Pinned constraints appear in exactly one scope.
        for plan in plans:
            if plan.tier == SHARD_LOCAL and plan.shard is not None:
                assert (plan.constraint in scopes[plan.shard]) and (
                    plan.constraint not in scopes[1 - plan.shard]
                )

    def test_single_shard_scope_collapses_to_none(self):
        # The N=1 degeneration: every constraint is local to shard 0, so
        # the core's scope filter is disabled entirely.
        router = ShardedStore(shardlab_schema(), 1)
        assert router.cores[0].constraint_scope is None


# ---------------------------------------------------------------------------
# equivalence harness
# ---------------------------------------------------------------------------


class _Abort(Exception):
    """Client-requested rollback inside a transaction."""


def _apply_history(store, ops):
    """Apply ``ops`` to ``store``; return ``(oids, outcomes)``.

    ``oids`` is the creation-ordered list of minted oids (``None`` once
    deleted) — positions, not values, are the cross-store identity.
    ``outcomes`` records each op's observable result: accepted, skipped
    (no live target), or rejected with the constraint names / error type.
    """
    oids = []
    outcomes = []

    def _target(idx):
        live = [oid for oid in oids if oid is not None]
        if not live:
            return None
        return live[idx % len(live)]

    def _one(op):
        kind = op[0]
        if kind == "insert":
            _, class_name, fields = op
            obj = store.insert(class_name, **fields)
            oids.append(obj.oid)
        elif kind == "update":
            _, idx, fields = op
            target = _target(idx)
            if target is None:
                return "skip"
            store.update(target, **fields)
        elif kind == "delete":
            _, idx = op
            target = _target(idx)
            if target is None:
                return "skip"
            store.delete(target)
            oids[oids.index(target)] = None
        elif kind == "constant":
            _, value = op
            store.set_constant("CAP", value)
        else:  # pragma: no cover - strategy bug
            raise AssertionError(f"unknown op {kind!r}")
        return "ok"

    for op in ops:
        checkpoint = list(oids)
        try:
            if op[0] == "txn":
                _, subops, abort = op
                sub_outcomes = []
                with store.transaction():
                    for sub in subops:
                        sub_outcomes.append(_one(sub))
                    if abort:
                        raise _Abort()
                outcomes.append(("txn", tuple(sub_outcomes)))
            else:
                outcomes.append((_one(op),))
        except _Abort:
            oids[:] = checkpoint
            outcomes.append(("abort",))
        except ConstraintViolation as exc:
            oids[:] = checkpoint
            outcomes.append(("violation", exc.constraint_names))
        except EngineError as exc:
            oids[:] = checkpoint
            outcomes.append(("error", type(exc).__name__))
    return oids, outcomes


def _assert_equivalent(plain, plain_trace, sharded, sharded_trace):
    plain_oids, plain_outcomes = plain_trace
    shard_oids, shard_outcomes = sharded_trace
    assert plain_outcomes == shard_outcomes
    assert len(plain_oids) == len(shard_oids)
    assert len(plain) == len(sharded)
    for plain_oid, shard_oid in zip(plain_oids, shard_oids):
        assert (plain_oid is None) == (shard_oid is None)
        if plain_oid is None:
            continue
        left, right = plain.get(plain_oid), sharded.get(shard_oid)
        assert left.class_name == right.class_name
        assert dict(left.state) == dict(right.state)
    plain_audit = sorted(v.constraint_name for v in plain.audit())
    shard_audit = sorted(v.constraint_name for v in sharded.audit())
    assert plain_audit == shard_audit


_NAMES = st.text(alphabet="abcd", min_size=1, max_size=2)
_SINGLE_OPS = st.one_of(
    st.tuples(
        st.just("insert"),
        st.just("Alpha"),
        st.fixed_dictionaries(
            {"name": _NAMES, "score": st.integers(-3, 400)}
        ),
    ),
    st.tuples(
        st.just("insert"),
        st.just("Beta"),
        st.fixed_dictionaries(
            {"label": _NAMES, "value": st.integers(-3, 50)}
        ),
    ),
    st.tuples(
        st.just("insert"),
        st.just("Gauge"),
        st.fixed_dictionaries({"reading": st.integers(-3, 400)}),
    ),
    st.tuples(
        st.just("update"),
        st.integers(0, 30),
        st.fixed_dictionaries({"score": st.integers(-3, 400)}),
    ),
    st.tuples(st.just("delete"), st.integers(0, 30)),
)
_OPS = st.one_of(
    _SINGLE_OPS,
    st.tuples(
        st.just("txn"),
        st.lists(_SINGLE_OPS, min_size=1, max_size=4),
        st.booleans(),
    ),
    st.tuples(st.just("constant"), st.integers(5, 2000)),
)
_HISTORIES = st.lists(_OPS, max_size=25)


class TestEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @settings(max_examples=40, deadline=None)
    @given(ops=_HISTORIES)
    def test_sharded_store_matches_plain_store(self, shards, ops):
        schema = shardlab_schema()
        plain = ObjectStore(schema)
        sharded = ShardedStore(parse_database(SHARDLAB_SOURCE), shards)
        plain_trace = _apply_history(plain, ops)
        sharded_trace = _apply_history(sharded, ops)
        _assert_equivalent(plain, plain_trace, sharded, sharded_trace)

    @settings(max_examples=40, deadline=None)
    @given(ops=_HISTORIES)
    def test_spread_layout_matches_plain_store(self, ops):
        plain = ObjectStore(shardlab_schema())
        sharded = ShardedStore(
            parse_database(SHARDLAB_SOURCE), 4, spread=("Gauge",)
        )
        plain_trace = _apply_history(plain, ops)
        sharded_trace = _apply_history(sharded, ops)
        _assert_equivalent(plain, plain_trace, sharded, sharded_trace)

    @settings(max_examples=25, deadline=None)
    @given(ops=_HISTORIES)
    def test_global_tier_matches_plain_store(self, ops):
        ops = [_crossdb_op(op) for op in ops]
        plain = ObjectStore(crossdb_schema())
        sharded = ShardedStore(crossdb_schema(), 2)
        plain_trace = _apply_history(plain, ops)
        sharded_trace = _apply_history(sharded, ops)
        _assert_equivalent(plain, plain_trace, sharded, sharded_trace)


def _crossdb_op(op):
    """Remap a ShardLab op onto the CrossDB schema."""
    if op[0] == "insert":
        _, class_name, fields = op
        target = "Left" if class_name == "Alpha" else "Right"
        value = fields.get("score", fields.get("value", fields.get("reading", 0)))
        return ("insert", target, {"tag": int(value) % 5})
    if op[0] == "update":
        return ("update", op[1], {"tag": sum(op[2].values()) % 5})
    if op[0] == "txn":
        return ("txn", [_crossdb_op(sub) for sub in op[1]], op[2])
    if op[0] == "constant":
        return ("delete", op[1] % 7)  # CrossDB has no constants
    return op


# ---------------------------------------------------------------------------
# durable stores: manifest, recovery, 2PC
# ---------------------------------------------------------------------------


def _scripted_mix(store):
    """A deterministic history touching both pinned groups, with one
    cross-shard transaction in the middle.  Returns expected names."""
    store.insert("Alpha", name="a1", score=1)
    store.insert("Beta", label="b1", value=1)
    with store.transaction():
        store.insert("Alpha", name="a2", score=2)
        store.insert("Beta", label="b2", value=2)
    store.insert("Alpha", name="a3", score=3)
    return {"a1", "b1", "a2", "b2", "a3"}


def _names(store):
    return {
        obj.state.get("name") or obj.state.get("label")
        for obj in store.objects()
    }


class TestDurableSharding:
    def test_manifest_written_and_reused(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        _scripted_mix(store)
        store.close()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text("utf-8"))
        assert manifest["shards"] == 2
        assert manifest["database"] == "ShardLab"
        reopened = ShardedStore.open(tmp_path)
        assert reopened.shards == 2
        assert _names(reopened) == {"a1", "b1", "a2", "b2", "a3"}
        assert reopened.audit() == []
        reopened.close()

    def test_shard_count_mismatch_is_rejected(self, tmp_path):
        ShardedStore.open(tmp_path, shardlab_schema(), 2).close()
        with pytest.raises(ShardingError, match="2 shard"):
            ShardedStore.open(tmp_path, shardlab_schema(), 4)

    def test_unreadable_manifest_is_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", "utf-8")
        with pytest.raises(ShardingError, match="unreadable"):
            ShardedStore.open(tmp_path, shardlab_schema(), 2)

    def test_missing_schema_and_store_is_an_error(self, tmp_path):
        with pytest.raises(EngineError, match="no durable store"):
            ShardedStore.open(tmp_path / "void")

    def test_cross_shard_commit_uses_two_phases(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        _scripted_mix(store)
        assert store.two_phase_commits == 1
        store.close()
        # The coordinator shard's log holds the decide; both hold
        # prepare + resolve.
        kinds_by_shard = {}
        for shard in range(2):
            data = (shard_directory(tmp_path, shard) / LOG_NAME).read_bytes()
            records, _, _ = scan_log(data)
            kinds_by_shard[shard] = [rec["t"] for rec, _ in records]
        all_kinds = kinds_by_shard[0] + kinds_by_shard[1]
        assert all_kinds.count("prepare") == 2
        assert all_kinds.count("decide") == 1
        assert all_kinds.count("resolve") == 2

    def test_single_shard_touch_skips_two_phase(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        with store.transaction():
            store.insert("Alpha", name="a1", score=1)
            store.insert("Alpha", name="a2", score=2)
        assert store.two_phase_commits == 0
        store.close()

    def test_violating_cross_shard_txn_rolls_back_everywhere(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        with pytest.raises(ConstraintViolation) as excinfo:
            with store.transaction():
                store.insert("Alpha", name="big", score=999)
                store.insert("Beta", label="bad", value=-1)
        assert "ShardLab.Beta.oc_b" in excinfo.value.constraint_names
        assert len(store) == 0
        store.close()
        reopened = ShardedStore.open(tmp_path)
        assert len(reopened) == 0
        reopened.close()

    def test_per_shard_oid_namespaces_survive_reopen(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        a = store.insert("Alpha", name="a1", score=1)
        b = store.insert("Beta", label="b1", value=1)
        assert oid_shard(a.oid) == store.placement["Alpha"]
        assert oid_shard(b.oid) == store.placement["Beta"]
        store.close()
        reopened = ShardedStore.open(tmp_path)
        a2 = reopened.insert("Alpha", name="a2", score=2)
        # The shard-local counter continues; no oid is ever reused.
        assert a2.oid != a.oid
        assert oid_shard(a2.oid) == oid_shard(a.oid)
        reopened.close()

    def test_spread_cursor_recovers(self, tmp_path):
        store = ShardedStore.open(
            tmp_path, shardlab_schema(), 2, spread=("Gauge",)
        )
        first = [store.insert("Gauge", reading=i).oid for i in range(3)]
        store.close()
        reopened = ShardedStore.open(tmp_path)
        more = [reopened.insert("Gauge", reading=9).oid for _ in range(2)]
        seen = first + more
        assert len(set(seen)) == 5
        # Round-robin resumes: five inserts over two shards never pile
        # more than one extra object onto a shard.
        counts = {}
        for oid in seen:
            counts[oid_shard(oid)] = counts.get(oid_shard(oid), 0) + 1
        assert sorted(counts.values()) == [2, 3]
        reopened.close()

    def test_shard_stats_shape(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2, sync=True)
        _scripted_mix(store)
        stats = store.shard_stats()
        assert [row["shard"] for row in stats] == [0, 1]
        assert sum(row["objects"] for row in stats) == 5
        for row in stats:
            assert row["fsyncs"] >= 1
        store.close()

    def test_fsck_clean_after_close(self, tmp_path):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2)
        _scripted_mix(store)
        store.close()
        for shard in range(2):
            report = fsck(shard_directory(tmp_path, shard))
            assert report.exit_code == 0


# ---------------------------------------------------------------------------
# the per-shard crash matrix
# ---------------------------------------------------------------------------


#: Fault points swept per shard.  ``at`` indexes the n-th crossing of the
#: point *on that shard's files only*, so the sweep lands before, inside
#: and after the 2PC bracket of the scripted history.
_MATRIX = [
    (shard, point, kind, at)
    for shard in (0, 1)
    for point in ("wal.append", "wal.fsync")
    for kind in ("crash", "crash_after")
    for at in (0, 1, 2, 3, 4)
]


class TestPerShardCrashMatrix:
    @pytest.mark.parametrize("shard,point,kind,at", _MATRIX)
    def test_crash_preserves_cross_shard_atomicity(
        self, tmp_path, shard, point, kind, at
    ):
        injector = FaultInjector([FaultSpec(point, kind, at=at)])
        store = ShardedStore.open(
            tmp_path,
            shardlab_schema(),
            2,
            sync=True,
            faults={shard: injector},
        )
        completed = set()
        steps = [
            ("a1", lambda s: s.insert("Alpha", name="a1", score=1)),
            ("b1", lambda s: s.insert("Beta", label="b1", value=1)),
            ("txn", _cross_shard_txn),
            ("a3", lambda s: s.insert("Alpha", name="a3", score=3)),
        ]
        crashed = False
        for label, step in steps:
            try:
                step(store)
                completed.add(label)
            except FAULT_EXCEPTIONS:
                crashed = True
                break
        if not crashed:
            try:
                # The schedule may name crossings this history never hit,
                # or a swallowed resolve-phase fault left the shard's log
                # poisoned — close is then allowed to fail too.
                store.close()
            except FAULT_EXCEPTIONS:
                pass
        recovered = ShardedStore.open(tmp_path, verify=True)
        names = _names(recovered)
        # Cross-shard atomicity: the 2PC transaction is all-or-nothing.
        assert ("a2" in names) == ("b2" in names)
        # Sync commits that returned are durable; later steps may have
        # landed or not (the crashing one), never partially.
        expected = {"txn": {"a2", "b2"}}
        for label in completed:
            for name in expected.get(label, {label}):
                assert name in names
        assert names <= {"a1", "b1", "a2", "b2", "a3"}
        assert recovered.audit() == []
        recovered.close()
        # Logs are settled after recovery: no torn tails above severity 1.
        for i in range(2):
            assert fsck(shard_directory(tmp_path, i)).exit_code <= 1

    def test_prepare_without_decide_is_presumed_abort(self, tmp_path):
        # Crash shard 1 at its first fsync *inside* the bracket: its
        # prepare may persist, but no decide exists anywhere.
        injector = FaultInjector([FaultSpec("wal.fsync", "crash", at=0)])
        store = ShardedStore.open(
            tmp_path, shardlab_schema(), 2, sync=True, faults={1: injector}
        )
        with pytest.raises(FAULT_EXCEPTIONS):
            _cross_shard_txn(store)
        recovered = ShardedStore.open(tmp_path, verify=True)
        assert _names(recovered) == set()
        assert recovered.audit() == []
        recovered.close()

    def test_decide_in_one_log_commits_every_shard(self, tmp_path):
        # Crash the non-coordinator after the decide is durable (its own
        # resolve fsync): recovery must pool the coordinator's decide and
        # apply the in-doubt bracket on the crashed shard.
        coordinator = None
        probe = ShardedStore(shardlab_schema(), 2)
        alpha_shard = probe.placement["Alpha"]
        beta_shard = probe.placement["Beta"]
        coordinator = min(alpha_shard, beta_shard)
        other = beta_shard if coordinator == alpha_shard else alpha_shard
        # On ``other`` the fsync order is: prepare (0), resolve (1).
        injector = FaultInjector([FaultSpec("wal.fsync", "crash", at=1)])
        store = ShardedStore.open(
            tmp_path,
            shardlab_schema(),
            2,
            sync=True,
            faults={other: injector},
        )
        try:
            _cross_shard_txn(store)
        except FAULT_EXCEPTIONS:
            pass
        recovered = ShardedStore.open(tmp_path, verify=True)
        names = _names(recovered)
        assert ("a2" in names) == ("b2" in names)
        # The decide record fsynced on the coordinator before the crashed
        # resolve, so the bracket must have committed.
        data = (
            shard_directory(tmp_path, coordinator) / LOG_NAME
        ).read_bytes()
        records, _, _ = scan_log(data)
        kinds = [rec["t"] for rec, _ in records]
        if "decide" in kinds:
            assert names == {"a2", "b2"}
        recovered.close()


def _cross_shard_txn(store):
    with store.transaction():
        store.insert("Alpha", name="a2", score=2)
        store.insert("Beta", label="b2", value=2)


# ---------------------------------------------------------------------------
# durable equivalence under crashes (Hypothesis)
# ---------------------------------------------------------------------------


_CRASH_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("alpha"), st.integers(0, 100)),
        st.tuples(st.just("beta"), st.integers(0, 40)),
        st.tuples(st.just("pair"), st.integers(0, 100)),
    ),
    min_size=1,
    max_size=6,
)


class TestCrashEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        steps=_CRASH_STEPS,
        shard=st.integers(0, 1),
        point=st.sampled_from(["wal.append", "wal.fsync"]),
        at=st.integers(0, 5),
    )
    def test_recovery_lands_on_a_committed_state(
        self, tmp_path_factory, steps, shard, point, at
    ):
        tmp_path = tmp_path_factory.mktemp("crash-eq")
        injector = FaultInjector([FaultSpec(point, "crash", at=at)])
        store = ShardedStore.open(
            tmp_path,
            shardlab_schema(),
            2,
            sync=True,
            faults={shard: injector},
        )
        committed = []  # names durable when the call returned
        attempted = []
        seq = 0
        try:
            for kind, value in steps:
                seq += 1
                if kind == "alpha":
                    name = f"a{seq}"
                    attempted.append([name])
                    store.insert("Alpha", name=name, score=value)
                    committed.append(name)
                elif kind == "beta":
                    name = f"b{seq}"
                    attempted.append([name])
                    store.insert("Beta", label=name, value=value)
                    committed.append(name)
                else:
                    pair = [f"pa{seq}", f"pb{seq}"]
                    attempted.append(pair)
                    with store.transaction():
                        store.insert("Alpha", name=pair[0], score=value)
                        store.insert("Beta", label=pair[1], value=value)
                    committed.extend(pair)
        except FAULT_EXCEPTIONS:
            pass
        else:
            store.close()
        recovered = ShardedStore.open(tmp_path, verify=True)
        names = _names(recovered)
        assert set(committed) <= names
        assert names <= {n for group in attempted for n in group}
        # Pairs are atomic even when the crash hit mid-bracket.
        for group in attempted:
            if len(group) == 2:
                assert (group[0] in names) == (group[1] in names)
        assert recovered.audit() == []
        recovered.close()


# ---------------------------------------------------------------------------
# in-memory routing behaviour
# ---------------------------------------------------------------------------


class TestRouting:
    def test_fast_path_engages_for_local_ops(self):
        store = ShardedStore(shardlab_schema(), 2)
        store.insert("Alpha", name="a1", score=1)
        before = store.fast_path_ops
        store.insert("Alpha", name="a2", score=2)
        assert store.fast_path_ops == before + 1

    def test_global_tier_forces_routed_ops(self):
        store = ShardedStore(crossdb_schema(), 2)
        with store.transaction():
            store.insert("Left", tag=1)
            store.insert("Right", tag=1)
        before = store.routed_global_ops
        store.insert("Right", tag=2)
        assert store.routed_global_ops == before + 1

    def test_len_contains_get_across_shards(self):
        store = ShardedStore(shardlab_schema(), 2)
        a = store.insert("Alpha", name="a1", score=1)
        b = store.insert("Beta", label="b1", value=1)
        assert len(store) == 2
        assert a.oid in store and b.oid in store
        assert store.get(a.oid).state["name"] == "a1"
        assert store.get(b.oid).state["label"] == "b1"

    def test_extent_merges_spread_shards_in_insertion_order(self):
        store = ShardedStore(shardlab_schema(), 4, spread=("Gauge",))
        minted = [store.insert("Gauge", reading=i).oid for i in range(6)]
        assert [obj.oid for obj in store.extent("Gauge")] == minted

    def test_set_constant_reaches_every_shard(self):
        store = ShardedStore(shardlab_schema(), 2, spread=("Gauge",))
        store.insert("Gauge", reading=500)
        store.set_constant("CAP", 600)
        with pytest.raises(ConstraintViolation):
            store.insert("Gauge", reading=200)

    def test_mergeable_aggregate_sums_partials(self):
        store = ShardedStore(shardlab_schema(), 4, spread=("Gauge",))
        for i in range(8):
            store.insert("Gauge", reading=100)
        # 8 * 100 = 800 < 1000; the next 100 would still fit, 300 not.
        with pytest.raises(ConstraintViolation) as excinfo:
            store.insert("Gauge", reading=300)
        assert "ShardLab.Gauge.cc_gauge" in excinfo.value.constraint_names
        assert len(store.extent("Gauge")) == 8

    def test_key_constraint_spans_one_shard(self):
        store = ShardedStore(shardlab_schema(), 2)
        store.insert("Alpha", name="dup", score=1)
        with pytest.raises(ConstraintViolation) as excinfo:
            store.insert("Alpha", name="dup", score=2)
        assert "ShardLab.Alpha.cc_key" in excinfo.value.constraint_names

    def test_unknown_oid_message_matches_plain_store(self):
        plain = ObjectStore(shardlab_schema())
        sharded = ShardedStore(shardlab_schema(), 2)
        with pytest.raises(EngineError) as plain_exc:
            plain.get("Alpha#99")
        with pytest.raises(EngineError) as shard_exc:
            sharded.get("Alpha#99")
        assert type(plain_exc.value) is type(shard_exc.value)

    def test_explain_violations_works_on_router(self):
        store = ShardedStore(shardlab_schema(), 2, enforce=False)
        store.insert("Alpha", name="bad", score=-5)
        cores = store.explain_violations()
        assert any("oc_a" in core.constraint_name for core in cores)


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------


class TestShardingCli:
    def _make_store(self, tmp_path, sync=False):
        store = ShardedStore.open(tmp_path, shardlab_schema(), 2, sync=sync)
        _scripted_mix(store)
        store.close()

    def test_fsck_all_clean(self, tmp_path, capsys):
        from repro.cli import main

        self._make_store(tmp_path)
        assert main(["fsck", "--all", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard-0" in out and "shard-1" in out

    def test_fsck_all_deep_audits_whole_store(self, tmp_path, capsys):
        from repro.cli import main

        self._make_store(tmp_path)
        assert main(["fsck", "--all", "--deep", str(tmp_path)]) == 0
        assert "deep audit: all constraints hold" in capsys.readouterr().out

    def test_fsck_all_reports_worst_shard(self, tmp_path):
        from repro.cli import main

        self._make_store(tmp_path)
        log = shard_directory(tmp_path, 1) / LOG_NAME
        with log.open("ab") as handle:
            handle.write(b"\x00garbage tail not a frame\n")
        assert main(["fsck", "--all", str(tmp_path)]) >= 1
        # The single-directory scrub agrees on the damaged shard...
        assert main(["fsck", str(shard_directory(tmp_path, 1))]) >= 1
        # ...and the intact shard still scrubs clean.
        assert main(["fsck", str(shard_directory(tmp_path, 0))]) == 0

    def test_fsck_all_without_shards_is_fatal(self, tmp_path):
        from repro.cli import main

        assert main(["fsck", "--all", str(tmp_path)]) == 2

    def test_stress_shards_in_memory(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "stress",
                    "--shards",
                    "2",
                    "--seconds",
                    "0.2",
                    "--objects",
                    "40",
                    "--writers",
                    "1",
                    "--readers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "across 2 shard(s)" in out
        assert "fast-path op(s)" in out
        assert "shard 0: " in out and "shard 1: " in out
        assert "all constraints hold" in out

    def test_stress_shards_durable_reports_group_commit(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        assert (
            main(
                [
                    "stress",
                    "--shards",
                    "2",
                    "--seconds",
                    "0.2",
                    "--objects",
                    "40",
                    "--writers",
                    "2",
                    "--readers",
                    "1",
                    "--dir",
                    str(tmp_path / "db"),
                    "--sync",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "two-phase commit(s)" in out
        assert "fsyncs/commit" in out
        # The directory the stressor leaves behind scrubs clean.
        assert main(["fsck", "--all", str(tmp_path / "db")]) == 0
