"""Tests for the index-maintenance subsystem (repro.engine.indexes).

The acceptance properties: after *any* sequence of inserts, updates, deletes
and rollbacks, every maintained index agrees with a from-scratch naive scan
(deep/shallow extents, running aggregates, key maps), and an indexed store
accepts/rejects exactly the same transactions as an unindexed one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObjectStore
from repro.constraints.evaluate import INDEX_MISS, VACUOUS
from repro.engine.indexes import IndexManager, KeyIndex, OrderedOidSet, RunningAggregate
from repro.errors import ConstraintViolation
from repro.fixtures import cslibrary_schema
from repro.tm.parser import parse_database

INDEXLAB_SOURCE = """
Database IndexLab

constants
  CEILING = 1000000

Class Base
attributes
  name  : string
  score : int
class constraints
  cc_key: key name
  cc_sum: (sum (collect x for x in self) over score) < CEILING
  cc_min: (min (collect x for x in self) over score) >= 0
  cc_max: (max (collect x for x in self) over score) < CEILING
end Base

Class Sub isa Base
attributes
  extra : int
class constraints
  cc_avg: (avg (collect x for x in self) over extra) < CEILING
end Sub
"""


def indexlab_schema():
    return parse_database(INDEXLAB_SOURCE)


class _Abort(Exception):
    """Raised inside a transaction to force a rollback."""


# ---------------------------------------------------------------------------
# naive ground truth
# ---------------------------------------------------------------------------


def assert_indexes_match_naive_scan(store: ObjectStore) -> None:
    """Every index must agree with a from-scratch scan of the raw store."""
    manager = store._indexes
    assert manager is not None
    schema = store.schema
    live = list(store._objects.values())

    for class_name in schema.classes:
        deep = [
            obj.oid
            for obj in live
            if schema.is_subclass_of(obj.class_name, class_name)
        ]
        assert list(manager.deep_extent_oids(class_name)) == deep
        assert [obj.oid for obj in store.extent(class_name)] == deep
        shallow = [obj.oid for obj in live if obj.class_name == class_name]
        assert [obj.oid for obj in store.extent(class_name, deep=False)] == shallow

    for (class_name, over), aggregate in manager._aggregates.items():
        values = [
            obj.state[over]
            for obj in live
            if schema.is_subclass_of(obj.class_name, class_name)
        ]
        assert aggregate.valid
        for func in sorted(aggregate.funcs | {"sum", "count"}):
            if func in ("min", "max") and func not in aggregate.funcs:
                continue
            got = manager.aggregate_value(func, class_name, over)
            if func == "sum":
                assert got == sum(values)
            elif func == "count":
                assert got == len(values)
            elif not values:
                assert got is VACUOUS
            elif func == "avg":
                assert got == sum(values) / len(values)
            elif func == "min":
                assert got == min(values)
            else:
                assert got == max(values)

    for (class_name, attributes), _key in manager._keys.items():
        tuples = [
            tuple(obj.state[attr] for attr in attributes)
            for obj in live
            if schema.is_subclass_of(obj.class_name, class_name)
        ]
        assert manager.key_unique(class_name, attributes) == (
            len(set(tuples)) == len(tuples)
        )


# ---------------------------------------------------------------------------
# op interpreter shared by the property tests
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "insert_base",
                "insert_sub",
                "update",
                "delete",
                "txn_commit",
                "txn_abort",
            ]
        ),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=10,
)


def _apply_one(store: ObjectStore, kind: str, a: int, b: int, c: int) -> str | None:
    """Run one op; returns ``"rejected"`` when enforcement refused it."""

    def mutate(seed: int) -> None:
        extent = store.extent("Base")
        choice = seed % 4
        if choice == 0 or not extent:
            store.insert("Base", name=f"n{(seed + c) % 9}", score=c)
        elif choice == 1:
            store.insert(
                "Sub", name=f"n{(seed + c) % 9}", score=c, extra=seed % 50
            )
        elif choice == 2:
            store.update(extent[seed % len(extent)], score=c, name=f"n{b % 9}")
        else:
            store.delete(extent[seed % len(extent)])

    try:
        if kind == "txn_commit":
            with store.transaction():
                for offset in range(3):
                    mutate(a + offset)
        elif kind == "txn_abort":
            try:
                with store.transaction():
                    for offset in range(3):
                        mutate(a + offset)
                    raise _Abort()
            except _Abort:
                pass
        elif kind == "insert_base":
            store.insert("Base", name=f"n{b % 9}", score=c)
        elif kind == "insert_sub":
            store.insert("Sub", name=f"n{b % 9}", score=c, extra=a % 50)
        else:
            extent = store.extent("Base")
            if not extent:
                return None
            target = extent[a % len(extent)]
            if kind == "update":
                store.update(target, score=c, name=f"n{b % 9}")
            else:
                store.delete(target)
    except ConstraintViolation:
        return "rejected"
    return None


class TestIndexesMatchNaiveScans:
    """Acceptance property 1: after any random sequence of insert / update /
    delete / rollback, every index agrees with a from-scratch naive scan."""

    @given(ops=OPS)
    @settings(max_examples=120, deadline=None)
    def test_random_histories(self, ops):
        store = ObjectStore(indexlab_schema())
        for kind, a, b, c in ops:
            _apply_one(store, kind, a, b, c)
            assert_indexes_match_naive_scan(store)

    def test_aborted_transaction_restores_indexes_and_order(self):
        store = ObjectStore(indexlab_schema())
        for index in range(6):
            store.insert("Base", name=f"n{index}", score=index)
        before = [obj.oid for obj in store.extent("Base")]
        with pytest.raises(_Abort):
            with store.transaction():
                store.delete(before[2])  # resurrection must restore order
                store.insert("Base", name="n9", score=9)
                store.update(store.extent("Base")[0], score=40)
                raise _Abort()
        assert [obj.oid for obj in store.extent("Base")] == before
        assert_indexes_match_naive_scan(store)

    def test_rejected_single_operations_roll_indexes_back(self):
        store = ObjectStore(indexlab_schema())
        store.insert("Base", name="a", score=1)
        store.insert("Base", name="b", score=2)
        with pytest.raises(ConstraintViolation, match="cc_key"):
            store.insert("Base", name="a", score=3)
        with pytest.raises(ConstraintViolation, match="cc_key"):
            store.update(store.extent("Base")[1], name="a")
        with pytest.raises(ConstraintViolation, match="cc_min"):
            store.update(store.extent("Base")[0], score=-5)
        assert_indexes_match_naive_scan(store)


class TestIndexedUnindexedEquivalence:
    """Acceptance property 2: indexed and unindexed validators accept/reject
    identical transactions and leave identical states behind."""

    @staticmethod
    def _snapshot(store):
        return {
            obj.oid: (obj.class_name, dict(obj.state))
            for obj in store.objects()
        }

    @given(ops=OPS)
    @settings(max_examples=120, deadline=None)
    def test_verdicts_and_states_match(self, ops):
        indexed = ObjectStore(indexlab_schema(), indexed=True)
        plain = ObjectStore(indexlab_schema(), indexed=False)
        for kind, a, b, c in ops:
            verdict_indexed = _apply_one(indexed, kind, a, b, c)
            verdict_plain = _apply_one(plain, kind, a, b, c)
            assert verdict_indexed == verdict_plain
            assert self._snapshot(indexed) == self._snapshot(plain)
        assert_indexes_match_naive_scan(indexed)

    def test_invalidated_aggregate_falls_back_to_scan_semantics(self):
        """An aggregate over a non-numeric attribute cannot be maintained;
        the index invalidates itself and evaluation must fall back to the
        scan with identical accept/reject behaviour."""
        source = """
        Database Words

        Class Word
        attributes
          text : string
        class constraints
          cc_min: (min (collect x for x in self) over text) >= 'b'
        end Word
        """
        verdicts = []
        for indexed in (True, False):
            store = ObjectStore(parse_database(source), indexed=indexed)
            store.insert("Word", text="cat")
            try:
                store.insert("Word", text="ant")  # 'ant' < 'b': violation
                verdicts.append("accepted")
            except ConstraintViolation:
                verdicts.append("rejected")
            assert len(store.extent("Word")) == 1
        assert verdicts == ["rejected", "rejected"]


class TestRegistrationAndRebuild:
    def test_registration_flow_from_dependency_index(self):
        """The dependency index names what to materialize: cc2's running sum,
        ScientificPubl.cc1's running avg, and cc1's key map."""
        store = ObjectStore(cslibrary_schema())
        manager = store._indexes
        assert ("Publication", "ourprice") in manager._aggregates
        assert ("ScientificPubl", "rating") in manager._aggregates
        assert "avg" in manager._aggregates[("ScientificPubl", "rating")].funcs
        assert ("Publication", ("isbn",)) in manager._keys
        assert manager.key_unique("Publication", ("isbn",)) is True
        # No index was registered for attributes nothing aggregates over.
        assert manager.aggregate_value("sum", "Publication", "title") is INDEX_MISS

    def test_key_over_reference_attribute_is_not_materialized(self):
        """The scan path *dereferences* reference-typed key components
        (raising on dangling oids); a hash index over raw oid strings would
        silently diverge, so such keys stay on the scan path."""
        source = """
        Database Refs

        Class Owner
        attributes
          name : string
        end Owner

        Class Pet
        attributes
          owner : Owner
        class constraints
          cc_key: key owner
        end Pet
        """
        store = ObjectStore(parse_database(source))
        assert store._indexes._keys == {}
        owner = store.insert("Owner", name="a")
        store.insert("Pet", owner=owner)
        with pytest.raises(ConstraintViolation, match="cc_key"):
            store.insert("Pet", owner=owner)  # duplicate, via the scan path

    def test_count_answered_from_extent_index(self):
        store = ObjectStore(indexlab_schema())
        store.insert("Base", name="a", score=1)
        store.insert("Sub", name="b", score=2, extra=3)
        assert store._indexes.aggregate_value("count", "Base", None) == 2
        assert store._indexes.aggregate_value("count", "Sub", None) == 1

    def test_schema_fingerprint_change_triggers_rebuild(self):
        schema = indexlab_schema()
        store = ObjectStore(schema)
        store.insert("Base", name="a", score=1)
        manager = store._indexes
        rebuilds = manager.rebuilds
        schema.set_constant("CEILING", 2_000_000)
        store.insert("Base", name="b", score=2)
        assert manager.rebuilds == rebuilds + 1
        assert_indexes_match_naive_scan(store)

    def test_class_added_after_population_is_indexed_after_rebuild(self):
        from repro.types.primitives import StringType

        schema = indexlab_schema()
        store = ObjectStore(schema)
        store.insert("Base", name="a", score=1)
        schema.new_class("Leaf", parent="Sub").add_attribute("kind", StringType())
        leaf = store.insert("Leaf", name="b", score=2, extra=1, kind="x")
        assert leaf in store.extent("Base")
        assert leaf in store.extent("Sub")
        assert_indexes_match_naive_scan(store)

    def test_unindexed_store_has_no_manager_but_same_extents(self):
        store = ObjectStore(indexlab_schema(), indexed=False)
        store.insert("Base", name="a", score=1)
        sub = store.insert("Sub", name="b", score=2, extra=3)
        assert store._indexes is None
        assert [o.oid for o in store.extent("Base")] == ["Base#1", "Sub#2"]
        assert [o.oid for o in store.extent("Base", deep=False)] == ["Base#1"]
        assert sub in store.extent("Sub")


class TestStructures:
    def test_ordered_oid_set_tolerates_malformed_oids(self):
        """Regression: an oid not shaped ``Class#N`` used to raise a raw
        ValueError out of ``OrderedOidSet.add``, crashing the whole index
        layer.  The documented contract is degradation: the set marks itself
        unsorted (malformed oids sort first, deterministically) and keeps
        working."""
        oids = OrderedOidSet()
        oids.add("C#2")
        oids.add("no-counter-here")  # previously: ValueError
        oids.add("C#1")
        assert "no-counter-here" in oids
        assert len(oids) == 3
        listing = list(oids)
        assert listing[0] == "no-counter-here"
        assert listing[1:] == ["C#1", "C#2"]
        oids.discard("no-counter-here")
        assert list(oids) == ["C#1", "C#2"]
        oids.add("C#3")
        assert list(oids) == ["C#1", "C#2", "C#3"]

    def test_oid_counter_default_fallback(self):
        from repro.engine.indexes import oid_counter

        assert oid_counter("C#7") == 7
        assert oid_counter("junk", -1) == -1
        with pytest.raises(ValueError):
            oid_counter("junk")

    def test_manager_survives_malformed_oid_insert(self):
        """An object with a hand-made oid reaching the index hooks must not
        crash maintenance; extents still include it."""
        from repro.engine.objects import DBObject

        store = ObjectStore(indexlab_schema())
        store.insert("Base", name="a", score=1)
        rogue = DBObject("rogue-oid", "Base", {"name": "b", "score": 2})
        store._objects[rogue.oid] = rogue
        store._direct_extents["Base"].add(rogue.oid)
        store._indexes.on_insert(rogue)  # previously: ValueError
        assert rogue.oid in store._indexes.deep_extent_oids("Base")
        assert {obj.oid for obj in store.extent("Base")} == {"Base#1", "rogue-oid"}

    def test_ordered_oid_set_resorts_after_out_of_order_add(self):
        oids = OrderedOidSet()
        for counter in (1, 3, 5):
            oids.add(f"C#{counter}")
        oids.add("C#2")  # a resurrection
        assert list(oids) == ["C#1", "C#2", "C#3", "C#5"]
        oids.discard("C#3")
        assert list(oids) == ["C#1", "C#2", "C#5"]

    def test_extent_order_matches_unindexed_after_delete_rollback(self):
        """Regression: after a rollback resurrects deleted objects, the
        indexed extent (OrderedOidSet lazy re-sort) and the unindexed scan
        (``_restore_object_order``) must agree on one deterministic
        insertion-oid order."""
        stores = [
            ObjectStore(indexlab_schema(), indexed=True),
            ObjectStore(indexlab_schema(), indexed=False),
        ]
        for store in stores:
            for index in range(6):
                store.insert("Base", name=f"n{index}", score=index)
            victims = [store.extent("Base")[i].oid for i in (1, 3)]
            with pytest.raises(_Abort):
                with store.transaction():
                    for victim in victims:
                        store.delete(victim)
                    store.insert("Base", name="ephemeral", score=9)
                    raise _Abort()
        indexed_order = [obj.oid for obj in stores[0].extent("Base")]
        scan_order = [obj.oid for obj in stores[1].extent("Base")]
        assert indexed_order == scan_order
        assert indexed_order == sorted(
            indexed_order, key=lambda oid: int(oid.rsplit("#", 1)[-1])
        )
        # Repeated reads stay stable (the lazy re-sort is idempotent).
        assert [obj.oid for obj in stores[0].extent("Base")] == indexed_order

    def test_extent_order_deterministic_with_malformed_oids(self):
        """Two oids without parseable counters share the fallback sort rank;
        the oid string breaks the tie, so indexed and unindexed extents
        stay aligned however the rollback reordered the object table."""
        from repro.engine.objects import DBObject

        stores = [
            ObjectStore(indexlab_schema(), indexed=True),
            ObjectStore(indexlab_schema(), indexed=False),
        ]
        for store in stores:
            store.insert("Base", name="a", score=1)
            # Hand-made oids arriving in opposite orders per store.
            rogues = ["zz-rogue", "aa-rogue"]
            if store.indexed:
                rogues.reverse()
            for rogue_oid in rogues:
                rogue = DBObject(rogue_oid, "Base", {"name": rogue_oid, "score": 2})
                store._objects[rogue.oid] = rogue
                store._direct_extents["Base"].add(rogue.oid)
                if store._indexes is not None:
                    store._indexes.on_insert(rogue)
            # Delete + rollback forces both representations to re-sort.
            victim = store.insert("Base", name="b", score=3)
            with pytest.raises(_Abort):
                with store.transaction():
                    store.delete(victim)
                    raise _Abort()
        indexed_order = [obj.oid for obj in stores[0].extent("Base")]
        scan_order = [obj.oid for obj in stores[1].extent("Base")]
        assert indexed_order == scan_order
        assert indexed_order[:2] == ["aa-rogue", "zz-rogue"]

    def test_running_aggregate_minmax_with_churn(self):
        aggregate = RunningAggregate("C", "x", {"min", "max"})
        for value in (5, 1, 9, 1):
            aggregate.add(value)
        aggregate.remove(1)
        aggregate.remove(9)
        assert aggregate.value("min") == 1
        assert aggregate.value("max") == 5
        assert aggregate.value("sum") == 6
        assert aggregate.value("avg") == 3
        aggregate.remove(1)
        aggregate.remove(5)
        assert aggregate.value("min") is VACUOUS
        assert aggregate.value("sum") == 0

    def test_running_aggregate_invalidates_on_unmaintainable_values(self):
        aggregate = RunningAggregate("C", "x", {"min"})
        aggregate.add("not a number")
        assert not aggregate.valid
        assert aggregate.value("sum") is INDEX_MISS
        nan_aggregate = RunningAggregate("C", "x", {"min"})
        nan_aggregate.add(float("nan"))
        assert not nan_aggregate.valid

    def test_key_index_duplicate_counting(self):
        key = KeyIndex("C", ("a", "b"))
        key.add({"a": 1, "b": 2})
        key.add({"a": 1, "b": 3})
        assert key.unique() is True
        key.add({"a": 1, "b": 2})
        assert key.unique() is False
        key.remove({"a": 1, "b": 2})
        assert key.unique() is True

    def test_key_index_invalidates_on_unhashable_component(self):
        key = KeyIndex("C", ("a",))
        key.add({"a": [1, 2]})
        assert key.unique() is None
