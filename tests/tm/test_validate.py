"""Tests for TM schema validation (repro.tm.validate)."""

import pytest

from repro.errors import SchemaError
from repro.fixtures import bookseller_schema, cslibrary_schema
from repro.tm import parse_database, validate_schema


def parse(source, **kwargs):
    return parse_database(source, validate_sections=False, **kwargs)


class TestPaperSchemasAreValid:
    def test_cslibrary_valid(self):
        assert validate_schema(cslibrary_schema()) == []

    def test_bookseller_valid(self):
        assert validate_schema(bookseller_schema()) == []


class TestInheritanceIssues:
    def test_missing_parent(self):
        schema = parse("""
Database D
Class A isa Ghost
end A
""")
        issues = validate_schema(schema)
        assert any("Ghost" in issue.message for issue in issues)

    def test_inheritance_cycle(self):
        schema = parse("""
Database D
Class A isa B
end A
Class B isa A
end B
""")
        issues = validate_schema(schema)
        assert any("cycle" in issue.message for issue in issues)

    def test_raise_on_error(self):
        schema = parse("""
Database D
Class A isa Ghost
end A
""")
        with pytest.raises(SchemaError):
            validate_schema(schema, raise_on_error=True)


class TestAttributeIssues:
    def test_dangling_class_reference(self):
        schema = parse("""
Database D
Class A
attributes
  other : Ghost
end A
""")
        issues = validate_schema(schema)
        assert any("undeclared class 'Ghost'" in issue.message for issue in issues)


class TestConstraintIssues:
    def test_unknown_attribute_in_constraint(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
object constraints
  oc1: y > 0
end A
""")
        issues = validate_schema(schema)
        assert any("unknown attribute 'y'" in issue.message for issue in issues)

    def test_undeclared_constant(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
object constraints
  oc1: x < LIMIT
end A
""")
        issues = validate_schema(schema)
        assert any("undeclared constant 'LIMIT'" in issue.message for issue in issues)

    def test_declared_constant_ok(self):
        schema = parse(
            """
Database D
constants
  LIMIT = 5
Class A
attributes
  x : int
object constraints
  oc1: x < LIMIT
end A
"""
        )
        assert validate_schema(schema) == []

    def test_path_through_non_reference(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
object constraints
  oc1: x.name = 'a'
end A
""")
        issues = validate_schema(schema)
        assert any("dereferences non-reference" in issue.message for issue in issues)

    def test_path_breaks_at_segment(self):
        schema = parse("""
Database D
Class P
attributes
  name : string
end P
Class A
attributes
  p : P
object constraints
  oc1: p.location = 'a'
end A
""")
        issues = validate_schema(schema)
        assert any("breaks at segment 'location'" in issue.message for issue in issues)

    def test_misclassified_section(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
object constraints
  oc1: key x
end A
""")
        issues = validate_schema(schema)
        assert any("structurally a class constraint" in issue.message for issue in issues)

    def test_key_over_unknown_attribute(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
class constraints
  cc1: key y
end A
""")
        issues = validate_schema(schema)
        assert any("key attribute 'y'" in issue.message for issue in issues)

    def test_quantifier_over_unknown_class(self):
        schema = parse("""
Database D
Class A
attributes
  x : int
end A
Database constraints
  db1: forall g in Ghost | g.x = 1
""")
        issues = validate_schema(schema)
        assert any("undeclared class 'Ghost'" in issue.message for issue in issues)

    def test_issue_describe(self):
        schema = parse("""
Database D
Class A isa Ghost
end A
""")
        issues = validate_schema(schema)
        assert issues[0].describe().startswith("D.A:")
