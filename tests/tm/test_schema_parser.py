"""Tests for the TM schema model and parser (repro.tm).

The Figure 1 databases must parse completely and expose the structure the
paper's narrative relies on.
"""

import pytest

from repro.constraints import ConstraintKind, parse_expression
from repro.errors import ParseError, SchemaError
from repro.fixtures import (
    bookseller_schema,
    bookseller_source,
    cslibrary_schema,
    cslibrary_source,
    personnel_db1_schema,
)
from repro.tm import parse_database, schema_to_source
from repro.tm.schema import ClassDef
from repro.types import REAL, STRING, ClassRef, RangeType, SetType


@pytest.fixture(scope="module")
def library():
    return cslibrary_schema()


@pytest.fixture(scope="module")
def bookseller():
    return bookseller_schema()


class TestCSLibraryParsing:
    def test_database_name(self, library):
        assert library.name == "CSLibrary"

    def test_all_classes_present(self, library):
        assert set(library.classes) == {
            "Publication",
            "ScientificPubl",
            "RefereedPubl",
            "NonRefereedPubl",
            "ProfessionalPubl",
        }

    def test_publication_attributes(self, library):
        publication = library.class_named("Publication")
        assert set(publication.attributes) == {
            "title",
            "isbn",
            "publisher",
            "shopprice",
            "ourprice",
        }
        assert publication.attributes["ourprice"].tm_type == REAL

    def test_inheritance_chain(self, library):
        assert library.is_subclass_of("RefereedPubl", "Publication")
        assert library.is_subclass_of("RefereedPubl", "ScientificPubl")
        assert not library.is_subclass_of("Publication", "RefereedPubl")

    def test_rating_range_type(self, library):
        assert library.attribute_type("ScientificPubl", "rating") == RangeType(1, 5)

    def test_editors_set_type(self, library):
        assert library.attribute_type("ScientificPubl", "editors") == SetType(STRING)

    def test_publication_constraints(self, library):
        publication = library.class_named("Publication")
        names = [c.name for c in publication.constraints]
        assert names == ["oc1", "oc2", "cc1", "cc2"]
        oc1 = publication.constraints[0]
        assert oc1.kind is ConstraintKind.OBJECT
        assert oc1.formula == parse_expression("ourprice <= shopprice")
        assert oc1.database == "CSLibrary"
        assert oc1.owner == "Publication"

    def test_multiline_cc2_parsed(self, library):
        cc2 = next(
            c for c in library.class_named("Publication").constraints if c.name == "cc2"
        )
        assert cc2.kind is ConstraintKind.CLASS
        assert "sum" in str(cc2.formula)

    def test_constants(self, library):
        assert library.constants["MAX"] == 100000
        assert "ACM" in library.constants["KNOWNPUBLISHERS"]

    def test_qualified_name(self, library):
        oc1 = library.class_named("RefereedPubl").constraints[0]
        assert oc1.qualified_name == "CSLibrary.RefereedPubl.oc1"


class TestBooksellerParsing:
    def test_classes(self, bookseller):
        assert set(bookseller.classes) == {
            "Item",
            "Proceedings",
            "Monograph",
            "Publisher",
        }

    def test_reference_attribute(self, bookseller):
        assert bookseller.attribute_type("Item", "publisher") == ClassRef("Publisher")

    def test_boolean_attribute_with_question_mark(self, bookseller):
        from repro.types import BOOL

        assert bookseller.attribute_type("Proceedings", "ref?") == BOOL

    def test_rating_scale_differs_from_library(self, bookseller):
        assert bookseller.attribute_type("Proceedings", "rating") == RangeType(1, 10)

    def test_proceedings_constraints(self, bookseller):
        proceedings = bookseller.class_named("Proceedings")
        assert [c.name for c in proceedings.constraints] == ["oc1", "oc2", "oc3"]
        oc2 = proceedings.constraints[1]
        assert oc2.formula == parse_expression("ref? = true implies rating >= 7")

    def test_database_constraint(self, bookseller):
        assert len(bookseseller_db := bookseller.database_constraints) == 1
        db1 = bookseseller_db[0]
        assert db1.kind is ConstraintKind.DATABASE
        assert db1.formula == parse_expression(
            "forall p in Publisher exists i in Item | i.publisher = p"
        )


class TestInheritanceLookups:
    def test_effective_attributes_include_inherited(self, library):
        attrs = library.effective_attributes("RefereedPubl")
        assert "isbn" in attrs  # from Publication
        assert "rating" in attrs  # from ScientificPubl
        assert "avgAccRate" in attrs  # own

    def test_effective_object_constraints_inherited(self, library):
        constraints = library.effective_object_constraints("RefereedPubl")
        names = {c.qualified_name for c in constraints}
        assert "CSLibrary.RefereedPubl.oc1" in names
        assert "CSLibrary.Publication.oc1" in names
        assert "CSLibrary.Publication.oc2" in names

    def test_class_constraints_not_inherited(self, library):
        """Section 5.2.2: 'unlike object constraints, class constraints are
        not inheritable'."""
        assert library.class_constraints("RefereedPubl") == []
        assert len(library.class_constraints("Publication")) == 2

    def test_subclasses_of(self, library):
        assert set(library.subclasses_of("ScientificPubl")) == {
            "RefereedPubl",
            "NonRefereedPubl",
        }

    def test_ancestors_order(self, library):
        chain = [c.name for c in library.ancestors("RefereedPubl")]
        assert chain == ["RefereedPubl", "ScientificPubl", "Publication"]

    def test_unknown_class_raises(self, library):
        with pytest.raises(SchemaError):
            library.class_named("Nonexistent")

    def test_unknown_attribute_raises(self, library):
        with pytest.raises(SchemaError):
            library.attribute_type("Publication", "nonexistent")


class TestTypeEnvironment:
    def test_simple_paths(self, library):
        env = library.type_environment("RefereedPubl")
        assert env.attribute_types["rating"] == RangeType(1, 5)
        assert env.attribute_types["ourprice"] == REAL

    def test_reference_paths_expanded(self, bookseller):
        env = bookseller.type_environment("Proceedings")
        assert env.attribute_types["publisher"] == ClassRef("Publisher")
        assert env.attribute_types["publisher.name"] == STRING

    def test_constants_carried(self, library):
        env = library.type_environment("Publication")
        assert env.constants["MAX"] == 100000


class TestRoundTrip:
    def test_cslibrary_round_trip(self, library):
        reparsed = parse_database(schema_to_source(library))
        assert set(reparsed.classes) == set(library.classes)
        for name, class_def in library.classes.items():
            reparsed_class = reparsed.class_named(name)
            assert reparsed_class.parent == class_def.parent
            assert set(reparsed_class.attributes) == set(class_def.attributes)
            assert [
                (c.name, c.kind, c.formula) for c in reparsed_class.constraints
            ] == [(c.name, c.kind, c.formula) for c in class_def.constraints]
        assert reparsed.constants == library.constants

    def test_bookseller_round_trip(self, bookseller):
        reparsed = parse_database(schema_to_source(bookseller))
        assert set(reparsed.classes) == set(bookseller.classes)
        assert [c.formula for c in reparsed.database_constraints] == [
            c.formula for c in bookseller.database_constraints
        ]


class TestPersonnelFixture:
    def test_intro_constraints(self):
        schema = personnel_db1_schema()
        employee = schema.class_named("Employee")
        assert employee.constraints[0].formula == parse_expression(
            "trav_reimb in {10, 20}"
        )
        assert employee.constraints[1].formula == parse_expression("salary < 1500")


class TestParserErrors:
    def test_mismatched_end(self):
        source = """
Database D
Class A
attributes
  x : int
end B
"""
        with pytest.raises(ParseError):
            parse_database(source)

    def test_duplicate_class(self):
        source = """
Database D
Class A
end A
Class A
end A
"""
        with pytest.raises(SchemaError):
            parse_database(source)

    def test_duplicate_attribute(self):
        source = """
Database D
Class A
attributes
  x : int
  x : real
end A
"""
        with pytest.raises(SchemaError):
            parse_database(source)

    def test_duplicate_constraint_label(self):
        source = """
Database D
Class A
attributes
  x : int
object constraints
  oc1: x > 0
  oc1: x < 9
end A
"""
        with pytest.raises(SchemaError):
            parse_database(source)

    def test_misclassified_constraint_rejected(self):
        source = """
Database D
Class A
attributes
  x : int
object constraints
  oc1: key x
end A
"""
        with pytest.raises(SchemaError):
            parse_database(source)

    def test_misclassification_tolerated_when_disabled(self):
        source = """
Database D
Class A
attributes
  x : int
object constraints
  oc1: key x
end A
"""
        schema = parse_database(source, validate_sections=False)
        assert schema.class_named("A").constraints[0].name == "oc1"

    def test_bad_type(self):
        source = """
Database D
Class A
attributes
  x : <<?>>
end A
"""
        with pytest.raises(ParseError):
            parse_database(source)

    def test_constants_injection(self):
        source = """
Database D
Class A
attributes
  x : int
end A
"""
        schema = parse_database(source, constants={"LIMIT": 10})
        assert schema.constants["LIMIT"] == 10
