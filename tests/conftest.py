"""Shared test configuration: Hypothesis profiles.

The ``ci`` profile prints the reproduction blob (``@reproduce_failure``)
whenever a property fails, so a red CI run carries everything needed to
replay the exact counterexample locally.  Select it with
``HYPOTHESIS_PROFILE=ci`` (the CI workflow does); the default profile stays
untouched so local runs keep Hypothesis' standard output.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    settings = None

if settings is not None:
    settings.register_profile("ci", print_blob=True, derandomize=False)
    profile = os.environ.get("HYPOTHESIS_PROFILE")
    if profile:
        settings.load_profile(profile)
