"""Tests for the constraint-language lexer/parser (repro.constraints.parser).

Every constraint appearing in Figure 1 of the paper must parse.
"""

import pytest

from repro.constraints import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
    parse_expression,
)
from repro.errors import ParseError


class TestFigure1Constraints:
    """Each constraint of the paper's Figure 1, verbatim (modulo OCR)."""

    def test_publication_oc1(self):
        node = parse_expression("ourprice <= shopprice")
        assert node == Comparison("<=", Path.of("ourprice"), Path.of("shopprice"))

    def test_publication_oc2(self):
        node = parse_expression("publisher in KNOWNPUBLISHERS")
        assert node == Membership(
            Path.of("publisher"), NamedConstant("KNOWNPUBLISHERS")
        )

    def test_publication_cc1_key(self):
        assert parse_expression("key isbn") == KeyConstraint(("isbn",))

    def test_publication_cc2_sum(self):
        node = parse_expression("(sum (collect x for x in self) over ourprice) < MAX")
        assert node == Comparison(
            "<",
            Aggregate("sum", "x", "self", "ourprice"),
            NamedConstant("MAX"),
        )

    def test_scientificpub_cc1_avg(self):
        node = parse_expression("(avg (collect x for x in self) over rating) < 4")
        assert node == Comparison(
            "<", Aggregate("avg", "x", "self", "rating"), Literal(4)
        )

    def test_refereedpub_oc1(self):
        assert parse_expression("rating >= 2") == Comparison(
            ">=", Path.of("rating"), Literal(2)
        )

    def test_nonrefereed_oc1(self):
        assert parse_expression("rating <= 3") == Comparison(
            "<=", Path.of("rating"), Literal(3)
        )

    def test_item_oc1(self):
        assert parse_expression("libprice <= shopprice") == Comparison(
            "<=", Path.of("libprice"), Path.of("shopprice")
        )

    def test_proceedings_oc1_implication(self):
        node = parse_expression("publisher.name='IEEE' implies ref?=true")
        assert node == Implies(
            Comparison("=", Path.of("publisher", "name"), Literal("IEEE")),
            Comparison("=", Path.of("ref?"), Literal(True)),
        )

    def test_proceedings_oc2(self):
        node = parse_expression("ref?=true implies rating >= 7")
        assert node == Implies(
            Comparison("=", Path.of("ref?"), Literal(True)),
            Comparison(">=", Path.of("rating"), Literal(7)),
        )

    def test_proceedings_oc3(self):
        node = parse_expression("publisher.name='ACM' implies rating >= 6")
        assert isinstance(node, Implies)

    def test_database_constraint_db1(self):
        node = parse_expression(
            "forall p in Publisher exists i in Item | i.publisher = p"
        )
        assert node == Quantified(
            "forall",
            "p",
            "Publisher",
            Quantified(
                "exists",
                "i",
                "Item",
                Comparison("=", Path.of("i", "publisher"), Path.of("p")),
            ),
        )


class TestIntroExampleConstraints:
    def test_trav_reimb_membership(self):
        node = parse_expression("trav_reimb in {10, 20}")
        assert node == Membership(Path.of("trav_reimb"), SetLiteral((10, 20)))

    def test_salary_bound(self):
        assert parse_expression("salary < 1500") == Comparison(
            "<", Path.of("salary"), Literal(1500)
        )


class TestRuleConditions:
    """Conditions from the object comparison rules of Section 2.2."""

    def test_interobject_condition(self):
        node = parse_expression("O.isbn = O'.isbn")
        assert node == Comparison("=", Path.of("O", "isbn"), Path.of("O'", "isbn"))

    def test_intraobject_condition(self):
        node = parse_expression("O'.ref? = true")
        assert node == Comparison("=", Path.of("O'", "ref?"), Literal(True))

    def test_contains_condition(self):
        node = parse_expression("contains(O.title, 'Proceed')")
        assert node == FunctionCall(
            "contains", (Path.of("O", "title"), Literal("Proceed"))
        )

    def test_conjunction_condition(self):
        node = parse_expression("O'.ref? = true and O'.rating >= 4")
        assert isinstance(node, And)
        assert len(node.parts) == 2


class TestOperatorsAndPrecedence:
    def test_implies_is_right_associative(self):
        node = parse_expression("a = 1 implies b = 2 implies c = 3")
        assert isinstance(node, Implies)
        assert isinstance(node.consequent, Implies)

    def test_and_binds_tighter_than_or(self):
        node = parse_expression("a = 1 or b = 2 and c = 3")
        assert isinstance(node, Or)
        assert isinstance(node.parts[1], And)

    def test_not_binds_tighter_than_and(self):
        node = parse_expression("not a = 1 and b = 2")
        assert isinstance(node, And)
        assert isinstance(node.parts[0], Not)

    def test_parentheses_override(self):
        node = parse_expression("(a = 1 or b = 2) and c = 3")
        assert isinstance(node, And)
        assert isinstance(node.parts[0], Or)

    def test_arithmetic_precedence(self):
        node = parse_expression("salary + bonus * 2 < 1500")
        assert isinstance(node, Comparison)
        assert isinstance(node.left, BinaryOp)
        assert node.left.op == "+"
        assert isinstance(node.left.right, BinaryOp)
        assert node.left.right.op == "*"

    def test_unary_minus(self):
        assert parse_expression("x > -5") == Comparison(
            ">", Path.of("x"), Literal(-5)
        )

    def test_arrow_style_implication(self):
        # Some renderings of the paper use => for implies.
        node = parse_expression("ref? = true => rating >= 7")
        assert isinstance(node, Implies)


class TestLiterals:
    def test_floats(self):
        assert parse_expression("price <= 12.5") == Comparison(
            "<=", Path.of("price"), Literal(12.5)
        )

    def test_double_quoted_strings(self):
        assert parse_expression('name = "ACM"') == Comparison(
            "=", Path.of("name"), Literal("ACM")
        )

    def test_booleans(self):
        assert parse_expression("ref? != false") == Comparison(
            "!=", Path.of("ref?"), Literal(False)
        )

    def test_set_of_strings(self):
        node = parse_expression("name in {'ACM', 'IEEE'}")
        assert node == Membership(Path.of("name"), SetLiteral(("ACM", "IEEE")))

    def test_set_with_negative_numbers(self):
        node = parse_expression("delta in {-1, 0, 1}")
        assert node == Membership(Path.of("delta"), SetLiteral((-1, 0, 1)))

    def test_empty_set(self):
        assert parse_expression("x in {}") == Membership(
            Path.of("x"), SetLiteral(())
        )


class TestConstantsConvention:
    def test_all_caps_is_constant(self):
        node = parse_expression("x < MAX")
        assert node == Comparison("<", Path.of("x"), NamedConstant("MAX"))

    def test_explicit_constants_set(self):
        node = parse_expression("x < Limit", constants={"Limit"})
        assert node == Comparison("<", Path.of("x"), NamedConstant("Limit"))

    def test_lowercase_is_path(self):
        node = parse_expression("x < limit")
        assert node == Comparison("<", Path.of("x"), Path.of("limit"))

    def test_single_letter_uppercase_is_path(self):
        # Single capitals are variables (O, C) by the paper's convention.
        node = parse_expression("O.isbn = x")
        assert node.left == Path.of("O", "isbn")


class TestMembershipInPathCollection:
    def test_membership_in_attribute(self):
        node = parse_expression("'databases' in subjects")
        assert node == Membership(Literal("databases"), Path.of("subjects"))


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "x <",
            "x = (1",
            "x in",
            "key",
            "forall x Publisher | x = 1",
            "x § y",
            "{1, } = x",
        ],
    )
    def test_parse_errors(self, source):
        with pytest.raises(ParseError):
            parse_expression(source)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expression("x = §")
        assert excinfo.value.line == 1

    def test_aggregate_variable_mismatch(self):
        with pytest.raises(ParseError):
            parse_expression("(sum (collect x for y in self) over price) < 3")
