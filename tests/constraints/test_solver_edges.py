"""Edge-case tests for the solver, normaliser and domains working together."""

import pytest

from repro.constraints import (
    Solver,
    TypeEnvironment,
    entails,
    is_satisfiable,
    parse_expression,
)
from repro.constraints.ast import And, FALSE, TRUE
from repro.domains import combine_numeric, numeric_range
from repro.errors import SolverError
from repro.types import BOOL, INT, REAL, STRING, EnumType, RangeType


def formula(source):
    return parse_expression(source)


class TestConstantFolding:
    def test_arithmetic_on_constants_folds(self):
        assert not is_satisfiable(formula("x < 2 + 1 and x > 5 - 2"))
        assert is_satisfiable(formula("x <= 2 * 3 and x >= 12 / 2"))

    def test_constant_vs_constant(self):
        assert not is_satisfiable(formula("3 > 5"))
        assert is_satisfiable(formula("3 < 5"))

    def test_division_by_zero_left_opaque(self):
        # 1/0 cannot fold; the comparison becomes an uninterpreted atom and
        # the formula stays (conservatively) satisfiable.
        assert is_satisfiable(formula("x < 1 / 0"))

    def test_scalar_named_constant(self):
        env = TypeEnvironment({}, {"MAX": 10})
        assert not is_satisfiable(formula("x > MAX and x < 5"), env)


class TestMixedKinds:
    def test_string_vs_numeric_equality_unsat(self):
        # name = 'a' gives a discrete domain; name = 3 a numeric one —
        # their intersection is a type clash, reported as such.
        with pytest.raises(SolverError):
            is_satisfiable(formula("name = 'a' and name = 3"))

    def test_boolean_path_atoms(self):
        env = TypeEnvironment({"flag": BOOL})
        assert not is_satisfiable(formula("flag = true and flag = false"), env)
        assert is_satisfiable(formula("flag != true"), env)

    def test_enum_typed_paths(self):
        env = TypeEnvironment({"tariff": EnumType(frozenset({10, 20}))})
        assert not is_satisfiable(formula("tariff = 15"), env)
        assert is_satisfiable(formula("tariff = 10"), env)


class TestQuantifierAndKeyAtoms:
    def test_quantified_atoms_are_opaque(self):
        from repro.constraints.ast import Not

        phi = formula("forall p in Publisher exists i in Item | i.publisher = p")
        assert is_satisfiable(phi)
        assert not is_satisfiable(And((phi, Not(phi))))

    def test_key_atoms_are_opaque_but_congruent(self):
        phi = formula("key isbn")
        from repro.constraints.ast import Not

        assert is_satisfiable(phi)
        assert not is_satisfiable(And((phi, Not(phi))))


class TestEntailmentEdges:
    def test_anything_entails_true(self):
        assert entails(formula("x = 1"), TRUE)

    def test_false_entails_anything(self):
        assert entails(FALSE, formula("x = 1"))

    def test_cross_type_independence(self):
        premise = formula("name = 'ACM' and rating >= 7")
        assert entails(premise, formula("rating >= 4"))
        assert entails(premise, formula("name = 'ACM'"))
        assert not entails(premise, formula("name = 'IEEE'"))

    def test_offset_entailment(self):
        assert entails(formula("x + 1 <= y"), formula("x < y"))
        assert not entails(formula("x <= y"), formula("x + 1 <= y"))

    def test_three_variable_chain(self):
        premise = formula("a <= b and b <= c and c <= 5")
        assert entails(premise, formula("a <= 5"))
        assert not entails(premise, formula("a <= 4"))

    def test_domain_of_with_equalities(self):
        solver = Solver(TypeEnvironment({"x": RangeType(1, 9), "y": RangeType(1, 9)}))
        dom = solver.domain_of(formula("x = y and y >= 7"), "x")
        assert dom.enumerate() == (7, 8, 9)


class TestCombineEdges:
    def test_avg_open_bounds(self):
        left = numeric_range(0, 10, low_strict=True)
        right = numeric_range(4, 6)
        combined = combine_numeric(left, right, "avg")
        low, strict = combined.lower_bound()
        assert low == 2 and strict

    def test_min_with_unbounded_sides(self):
        left = numeric_range(None, 5)
        right = numeric_range(3, None)
        combined = combine_numeric(left, right, "min")
        assert combined.lower_bound() == (None, False)
        assert combined.upper_bound() == (5, False)

    def test_max_with_unbounded_sides(self):
        left = numeric_range(None, 5)
        right = numeric_range(3, None)
        combined = combine_numeric(left, right, "max")
        assert combined.lower_bound() == (3, False)
        assert combined.upper_bound() == (None, False)

    def test_sum_integrality(self):
        left = numeric_range(1, 3, integral=True)
        right = numeric_range(10, 20, integral=True)
        assert combine_numeric(left, right, "sum").integral
        assert not combine_numeric(left, right, "avg").integral


class TestRealVsIntegerSubtleties:
    def test_real_typed_paths_keep_fractions(self):
        env = TypeEnvironment({"price": REAL})
        assert is_satisfiable(formula("price > 1 and price < 2"), env)

    def test_untyped_paths_keep_fractions(self):
        assert is_satisfiable(formula("x > 1 and x < 2"))

    def test_int_typed_paths_drop_fractions(self):
        env = TypeEnvironment({"num": INT})
        assert not is_satisfiable(formula("num > 1 and num < 2"), env)

    def test_integer_equality_through_inequalities(self):
        env = TypeEnvironment({"n": INT})
        assert entails(
            formula("n > 4 and n < 6"), formula("n = 5"), env
        )
