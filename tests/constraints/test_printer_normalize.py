"""Tests for the printer round-trip and normalisation passes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import (
    And,
    Comparison,
    Implies,
    Literal,
    Membership,
    Not,
    Or,
    Path,
    SetLiteral,
    negate,
    parse_expression,
    split_conjunction,
    to_dnf,
    to_nnf,
    to_source,
)
from repro.constraints.ast import FALSE, TRUE, conjoin, disjoin, paths_in
from repro.constraints.normalize import atoms_of
from repro.errors import SolverError


PAPER_SOURCES = [
    "ourprice <= shopprice",
    "publisher in KNOWNPUBLISHERS",
    "key isbn",
    "(sum (collect x for x in self) over ourprice) < MAX",
    "(avg (collect x for x in self) over rating) < 4",
    "rating >= 2",
    "publisher.name = 'IEEE' implies ref? = true",
    "ref? = true implies rating >= 7",
    "forall p in Publisher exists i in Item | i.publisher = p",
    "trav_reimb in {10, 20}",
    "contains(O.title, 'Proceed')",
    "O'.ref? = true and O'.rating >= 4",
    "not (a = 1 or b = 2) and c = 3 implies d != 4",
    "x + 1 <= y - 2",
    "x * 2 < y / 3 + 1",
]


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("source", PAPER_SOURCES)
    def test_round_trip(self, source):
        node = parse_expression(source)
        assert parse_expression(to_source(node)) == node

    def test_double_round_trip_stable(self):
        for source in PAPER_SOURCES:
            once = to_source(parse_expression(source))
            twice = to_source(parse_expression(once))
            assert once == twice

    def test_float_literal_keeps_floatness(self):
        node = parse_expression("x = 2.0")
        assert parse_expression(to_source(node)) == node


# -- random formula strategy -----------------------------------------------------

_paths = st.sampled_from([Path.of("a"), Path.of("b"), Path.of("c", "d")])
_literals = st.one_of(
    st.integers(-5, 5).map(Literal),
    st.sampled_from([Literal("x"), Literal(True), Literal(False)]),
)
_comparisons = st.builds(
    Comparison,
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    _paths,
    _literals,
)
_memberships = st.builds(
    Membership, _paths, st.just(SetLiteral((1, 2, 3)))
)
_atoms = st.one_of(_comparisons, _memberships)


def _formulas(depth=3):
    if depth == 0:
        return _atoms
    sub = _formulas(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(Not, sub),
        st.builds(lambda a, b: And((a, b)), sub, sub),
        st.builds(lambda a, b: Or((a, b)), sub, sub),
        st.builds(Implies, sub, sub),
    )


class TestRoundTripProperty:
    @given(_formulas())
    def test_parse_print_identity(self, formula):
        assert parse_expression(to_source(formula)) == formula


class TestNegate:
    def test_negate_comparison_flips_op(self):
        assert negate(parse_expression("rating >= 4")) == parse_expression("rating < 4")

    def test_negate_not_unwraps(self):
        inner = parse_expression("publisher in KNOWNPUBLISHERS")
        assert negate(Not(inner)) == inner

    def test_negate_constants(self):
        assert negate(TRUE) == FALSE
        assert negate(FALSE) == TRUE


class TestNNF:
    def test_pushes_negation_through_and(self):
        formula = parse_expression("not (a = 1 and b = 2)")
        nnf = to_nnf(formula)
        assert nnf == parse_expression("a != 1 or b != 2")

    def test_pushes_negation_through_or(self):
        formula = parse_expression("not (a = 1 or b = 2)")
        assert to_nnf(formula) == parse_expression("a != 1 and b != 2")

    def test_expands_implication(self):
        formula = parse_expression("a = 1 implies b = 2")
        assert to_nnf(formula) == parse_expression("a != 1 or b = 2")

    def test_negated_implication(self):
        formula = Not(parse_expression("a = 1 implies b = 2"))
        assert to_nnf(formula) == parse_expression("a = 1 and b != 2")

    def test_membership_negation_stays_wrapped(self):
        formula = parse_expression("not x in {1, 2}")
        nnf = to_nnf(formula)
        assert isinstance(nnf, Not)
        assert isinstance(nnf.operand, Membership)


class TestDNF:
    def test_atom_is_single_branch(self):
        branches = to_dnf(parse_expression("rating >= 4"))
        assert len(branches) == 1
        assert len(branches[0]) == 1

    def test_implication_gives_two_branches(self):
        branches = to_dnf(parse_expression("ref? = true implies rating >= 7"))
        assert len(branches) == 2

    def test_distribution(self):
        formula = parse_expression("(a = 1 or b = 2) and (c = 3 or d = 4)")
        branches = to_dnf(formula)
        assert len(branches) == 4

    def test_true_false(self):
        assert to_dnf(TRUE) == [[]]
        assert to_dnf(FALSE) == []

    def test_limit_guard(self):
        # 2^12 branches exceeds the default cap of 512.
        parts = tuple(
            parse_expression(f"a{i} = 1 or b{i} = 2") for i in range(12)
        )
        with pytest.raises(SolverError):
            to_dnf(And(parts))

    @given(_formulas(2))
    def test_dnf_branches_are_literals(self, formula):
        from repro.constraints.normalize import is_literal

        for branch in to_dnf(formula):
            assert all(is_literal(lit) for lit in branch)


class TestSplitConjunction:
    def test_paper_normalisation(self):
        """A constraint phi1 and phi2 and phi3 is 'normalised into n separate
        object constraints' (Section 5.2.1)."""
        formula = parse_expression("a = 1 and b = 2 and c = 3")
        assert len(split_conjunction(formula)) == 3

    def test_implication_distribution(self):
        formula = parse_expression("a = 1 implies (b = 2 and c = 3)")
        parts = split_conjunction(formula)
        assert parts == [
            parse_expression("a = 1 implies b = 2"),
            parse_expression("a = 1 implies c = 3"),
        ]

    def test_atomic_constraint_is_kept_whole(self):
        formula = parse_expression("a = 1 or b = 2")
        assert split_conjunction(formula) == [formula]

    def test_true_vanishes(self):
        assert split_conjunction(TRUE) == []

    def test_nested_conjunctions_flatten(self):
        formula = parse_expression("(a = 1 and b = 2) and c = 3")
        assert len(split_conjunction(formula)) == 3


class TestHelpers:
    def test_conjoin_simplification(self):
        atom = parse_expression("a = 1")
        assert conjoin([]) == TRUE
        assert conjoin([atom]) == atom
        assert conjoin([atom, FALSE]) == FALSE
        assert conjoin([TRUE, atom]) == atom

    def test_disjoin_simplification(self):
        atom = parse_expression("a = 1")
        assert disjoin([]) == FALSE
        assert disjoin([atom, TRUE]) == TRUE
        assert disjoin([FALSE, atom]) == atom

    def test_paths_in(self):
        formula = parse_expression("publisher.name = 'ACM' implies rating >= 6")
        assert paths_in(formula) == (Path.of("publisher", "name"), Path.of("rating"))

    def test_atoms_of(self):
        formula = parse_expression("a = 1 implies b = 2")
        atoms = atoms_of(formula)
        assert parse_expression("b = 2") in atoms
