"""Tests for the static-analysis subsystem (:mod:`repro.constraints.analysis`).

Covers the four passes — lint, per-constraint satisfiability, cross-constraint
contradiction/subsumption, redundancy pruning — plus the soundness contract:
the analyser must never report a satisfiable schema as contradictory, and
every UNSAT verdict on the solver fragment must survive brute-force
enumeration.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.analysis import (
    AnalysisReport,
    Diagnostic,
    analyze_schema,
    check_satisfiability,
    in_solver_fragment,
    lint_schema,
    pairwise_conflicts,
    prunable_constraints,
    registration_errors,
    summarize,
)
from repro.constraints.evaluate import EvalContext, evaluate
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.parser import parse_expression
from repro.fixtures import bookseller_schema, cslibrary_schema
from repro.tm.parser import parse_database
from repro.tm.schema import ClassDef, DatabaseSchema
from repro.types.primitives import RangeType


def codes(report: AnalysisReport) -> set[str]:
    return {d.code for d in report.diagnostics}


def by_code(report: AnalysisReport, code: str) -> list[Diagnostic]:
    return [d for d in report.diagnostics if d.code == code]


# ---------------------------------------------------------------------------
# pass 1: lint
# ---------------------------------------------------------------------------


class TestLint:
    def test_unknown_attribute_is_located_error(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : sizee > 1\n"
            "end Widget\n"
        )
        (diag,) = lint_schema(schema)
        assert diag.severity == "error"
        assert diag.code == "unknown-attribute"
        assert diag.constraint == "Demo.Widget.oc1"
        # 'sizee' starts at line 6, column 11 of the source above.
        assert (diag.line, diag.column) == (6, 11)

    def test_unknown_class_in_quantifier(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "end Widget\n"
            "Database constraints\n"
            "  db1 : forall w in Wodget | w.size > 0\n"
        )
        diagnostics = lint_schema(schema)
        assert any(d.code == "unknown-class" for d in diagnostics)
        assert all(d.severity == "error" for d in diagnostics)

    def test_incomparable_types_is_error(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    label : string\n"
            "  object constraints\n"
            "    oc1 : label > 3\n"
            "end Widget\n"
        )
        diagnostics = lint_schema(schema)
        assert any(d.code == "incomparable-types" for d in diagnostics)

    def test_cross_kind_equality_is_warning_only(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    label : string\n"
            "  object constraints\n"
            "    oc1 : label != 3\n"
            "end Widget\n"
        )
        diagnostics = lint_schema(schema)
        assert [d.code for d in diagnostics] == ["constant-comparison"]
        assert diagnostics[0].severity == "warn"

    def test_paper_fixture_schemas_lint_clean(self):
        for schema in (cslibrary_schema(), bookseller_schema()):
            assert lint_schema(schema) == []

    def test_paper_fixture_schemas_analyze_without_errors(self):
        for schema in (cslibrary_schema(), bookseller_schema()):
            report = analyze_schema(schema)
            assert report.errors() == []
            assert report.warnings() == []
            # The aggregate/key/quantified constraints are honestly unknown.
            assert codes(report) <= {"analysis-unknown", "tautology"}
            assert report.exit_code() == 0


# ---------------------------------------------------------------------------
# pass 2: per-constraint satisfiability
# ---------------------------------------------------------------------------


class TestSatisfiability:
    def test_unsat_constraint_is_error(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : size > 10 and size < 5\n"
            "end Widget\n"
        )
        report = analyze_schema(schema)
        assert by_code(report, "unsatisfiable")
        assert report.exit_code() == 2

    def test_tautology_under_declared_types_is_info(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : 0..3\n"
            "  object constraints\n"
            "    oc1 : size >= 0\n"
            "end Widget\n"
        )
        report = analyze_schema(schema)
        (diag,) = by_code(report, "tautology")
        assert diag.severity == "info"
        assert report.exit_code() == 0  # info never fails the gate

    def test_out_of_fragment_reports_honest_unknown(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  class constraints\n"
            "    cc1 : key size\n"
            "end Widget\n"
        )
        (constraint,) = schema.all_constraints()
        assert not in_solver_fragment(constraint.formula)
        diagnostics = check_satisfiability(schema, constraint)
        assert [d.code for d in diagnostics] == ["analysis-unknown"]
        assert diagnostics[0].severity == "info"


# ---------------------------------------------------------------------------
# pass 3: cross-constraint contradiction and subsumption
# ---------------------------------------------------------------------------


class TestCrossConstraint:
    def test_pairwise_contradiction_is_error(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : size >= 10\n"
            "    oc2 : size < 5\n"
            "end Widget\n"
        )
        report = analyze_schema(schema)
        assert by_code(report, "contradiction")
        assert report.exit_code() == 2

    def test_joint_contradiction_without_pairwise_conflict(self):
        schema = parse_database(
            "Database Demo\n"
            "Class T\n"
            "  attributes\n"
            "    a : int\n"
            "    b : int\n"
            "    c : int\n"
            "  object constraints\n"
            "    oc1 : a <= b\n"
            "    oc2 : b <= c\n"
            "    oc3 : a > c\n"
            "end T\n"
        )
        report = analyze_schema(schema)
        assert not by_code(report, "contradiction")
        assert by_code(report, "joint-contradiction")

    def test_subsumption_is_redundancy_warning(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : size >= 3\n"
            "    oc2 : size >= 2\n"
            "end Widget\n"
        )
        report = analyze_schema(schema)
        (diag,) = by_code(report, "redundant")
        assert diag.severity == "warn"
        assert diag.constraint == "Demo.Widget.oc2"
        assert "Demo.Widget.oc1" in diag.message
        assert report.exit_code() == 1

    def test_pairwise_conflicts_across_schemas(self):
        local = parse_database(
            "Database Shop\n"
            "Class Product\n"
            "  attributes\n"
            "    price : real\n"
            "  object constraints\n"
            "    oc1 : price >= 100\n"
            "end Product\n"
        )
        remote = parse_database(
            "Database Outlet\n"
            "Class Item\n"
            "  attributes\n"
            "    price : real\n"
            "  object constraints\n"
            "    oc1 : price < 50\n"
            "end Item\n"
        )
        (lc,) = local.all_constraints()
        (rc,) = remote.all_constraints()
        (diag,) = pairwise_conflicts([(lc, rc)])
        assert diag.code == "contradiction"
        assert "Shop.Product.oc1" in diag.message
        assert "Outlet.Item.oc1" in diag.message
        # Compatible pairs produce nothing.
        assert pairwise_conflicts([(lc, lc)]) == []


# ---------------------------------------------------------------------------
# pass 4: redundancy pruning
# ---------------------------------------------------------------------------


def _pruning_schema(extra: str = "") -> DatabaseSchema:
    return parse_database(
        "Database Demo\n"
        "Class Widget\n"
        "  attributes\n"
        "    size : int\n"
        "  object constraints\n"
        "    oc1 : size >= 3\n"
        "    oc2 : size >= 2\n"
        "end Widget\n" + extra
    )


class TestPruning:
    def test_entailed_constraint_is_pruned_to_its_keeper(self):
        pruned = prunable_constraints(_pruning_schema())
        assert {v.qualified_name: k.qualified_name for v, k in pruned.items()} == {
            "Demo.Widget.oc2": "Demo.Widget.oc1"
        }

    def test_keeper_on_subclass_cannot_prune_parent_constraint(self):
        # The stronger constraint lives on a subclass: it is not effective on
        # plain Widget objects, so the parent's weaker constraint must stay.
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : size >= 2\n"
            "end Widget\n"
            "Class BigWidget isa Widget\n"
            "  object constraints\n"
            "    oc2 : size >= 3\n"
            "end BigWidget\n"
        )
        assert prunable_constraints(schema) == {}

    def test_keeper_on_ancestor_prunes_subclass_constraint(self):
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "  object constraints\n"
            "    oc1 : size >= 3\n"
            "end Widget\n"
            "Class BigWidget isa Widget\n"
            "  object constraints\n"
            "    oc2 : size >= 2\n"
            "end BigWidget\n"
        )
        pruned = prunable_constraints(schema)
        assert {v.qualified_name for v in pruned} == {"Demo.BigWidget.oc2"}

    def test_lint_dirty_constraint_is_never_pruned(self):
        # oc2 is entailed by oc1 but its other conjunct compares across kinds
        # (warn) — a constraint that may surprise at evaluation time must not
        # be silenced by the pruner.
        schema = parse_database(
            "Database Demo\n"
            "Class Widget\n"
            "  attributes\n"
            "    size : int\n"
            "    label : string\n"
            "  object constraints\n"
            "    oc1 : size >= 3\n"
            "    oc2 : size >= 2 or label != 7\n"
            "end Widget\n"
        )
        assert prunable_constraints(schema) == {}


# ---------------------------------------------------------------------------
# conservative SAT (satellite: pinned behaviour outside completeness)
# ---------------------------------------------------------------------------


class TestConservativeSat:
    def test_pigeonhole_disequalities_stay_conservatively_sat(self):
        """Three pairwise disequalities over a two-value domain are UNSAT by
        pigeonhole, but the solver's per-variable domain reasoning cannot see
        it.  The analyser must stay silent (conservative SAT), never guess."""
        schema = parse_database(
            "Database Demo\n"
            "Class T\n"
            "  attributes\n"
            "    x : 0..1\n"
            "    y : 0..1\n"
            "    z : 0..1\n"
            "  object constraints\n"
            "    oc1 : x != y\n"
            "    oc2 : y != z\n"
            "    oc3 : x != z\n"
            "end T\n"
        )
        # Brute force: genuinely unsatisfiable.
        formula = parse_expression("x != y and y != z and x != z")
        assert not any(
            evaluate(formula, EvalContext(current={"x": x, "y": y, "z": z}))
            for x, y, z in itertools.product((0, 1), repeat=3)
        )
        # …yet the analyser reports nothing: SAT verdicts are conservative.
        report = analyze_schema(schema)
        assert not by_code(report, "unsatisfiable")
        assert not by_code(report, "contradiction")
        assert not by_code(report, "joint-contradiction")
        assert report.exit_code() == 0

    def test_two_value_disequality_chain_that_is_satisfiable(self):
        schema = parse_database(
            "Database Demo\n"
            "Class T\n"
            "  attributes\n"
            "    x : 0..1\n"
            "    y : 0..1\n"
            "  object constraints\n"
            "    oc1 : x != y\n"
            "end T\n"
        )
        report = analyze_schema(schema)
        assert report.exit_code() == 0


# ---------------------------------------------------------------------------
# report plumbing
# ---------------------------------------------------------------------------


class TestReportPlumbing:
    def test_render_and_to_dict_round_trip(self):
        report = analyze_schema(_pruning_schema())
        text = report.render_text()
        assert "[redundant]" in text
        assert text.strip().endswith("0 error(s), 1 warning(s), 0 info(s)")
        payload = report.to_dict()
        assert payload["schema"] == "Demo"
        assert payload["exit_code"] == 1
        assert payload["warnings"] == 1

    def test_summarize_takes_worst_exit_code(self):
        clean = analyze_schema(cslibrary_schema())
        warned = analyze_schema(_pruning_schema())
        summary = summarize({"a.tm": clean, "b.tm": warned})
        assert summary["exit_code"] == 1
        assert set(summary["schemas"]) == {"a.tm", "b.tm"}

    def test_registration_errors_ignores_warnings(self):
        assert registration_errors(_pruning_schema()) == []


# ---------------------------------------------------------------------------
# Hypothesis: soundness against brute-force enumeration
# ---------------------------------------------------------------------------

_VARS = ("x", "y")
_DOMAIN = (0, 1, 2, 3)

_atom_strategy = st.one_of(
    st.builds(
        lambda var, op, val: f"{var} {op} {val}",
        st.sampled_from(_VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(_DOMAIN),
    ),
    st.builds(
        lambda var, vals: f"{var} in {{{', '.join(map(str, sorted(vals)))}}}",
        st.sampled_from(_VARS),
        st.frozensets(st.sampled_from(_DOMAIN), min_size=1, max_size=3),
    ),
    st.builds(
        lambda a, op, b: f"{a} {op} {b}",
        st.sampled_from(_VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(_VARS),
    ),
)


@st.composite
def _formula_sources(draw, max_atoms=3):
    atoms = draw(st.lists(_atom_strategy, min_size=1, max_size=max_atoms))
    connectives = draw(
        st.lists(
            st.sampled_from(["and", "or", "implies"]),
            min_size=len(atoms) - 1,
            max_size=len(atoms) - 1,
        )
    )
    source = atoms[0]
    for connective, atom in zip(connectives, atoms[1:]):
        source = f"({source}) {connective} ({atom})"
    return source


def _schema_with_constraints(sources: list[str]) -> DatabaseSchema:
    schema = DatabaseSchema("Prop")
    class_def = ClassDef("T")
    for var in _VARS:
        class_def.add_attribute(var, RangeType(_DOMAIN[0], _DOMAIN[-1]))
    for index, source in enumerate(sources, start=1):
        class_def.add_constraint(
            Constraint(
                f"oc{index}",
                ConstraintKind.OBJECT,
                parse_expression(source),
                database="Prop",
            )
        )
    schema.add_class(class_def)
    return schema


def _jointly_satisfiable(sources: list[str]) -> bool:
    formulas = [parse_expression(source) for source in sources]
    return any(
        all(
            evaluate(formula, EvalContext(current=dict(zip(_VARS, values))))
            for formula in formulas
        )
        for values in itertools.product(_DOMAIN, repeat=len(_VARS))
    )


class TestSoundness:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(_formula_sources(), min_size=1, max_size=3))
    def test_satisfiable_schemas_are_never_reported_contradictory(self, sources):
        """The load-bearing guarantee: a schema some object state satisfies
        must never be rejected by the analyser."""
        schema = _schema_with_constraints(sources)
        report = analyze_schema(schema)
        if _jointly_satisfiable(sources):
            assert not by_code(report, "joint-contradiction")
            assert not by_code(report, "contradiction")
            # Individually satisfiable constraints are never flagged UNSAT.
            for index, source in enumerate(sources, start=1):
                formula = parse_expression(source)
                individually_sat = any(
                    evaluate(formula, EvalContext(current=dict(zip(_VARS, v))))
                    for v in itertools.product(_DOMAIN, repeat=len(_VARS))
                )
                if individually_sat:
                    assert not [
                        d
                        for d in by_code(report, "unsatisfiable")
                        if d.constraint == f"Prop.T.oc{index}"
                    ]

    @settings(max_examples=150, deadline=None)
    @given(st.lists(_formula_sources(), min_size=1, max_size=3))
    def test_unsat_verdicts_survive_enumeration(self, sources):
        """Dual direction: every contradiction the analyser *does* report on
        the solver fragment is a real one."""
        schema = _schema_with_constraints(sources)
        report = analyze_schema(schema)
        if by_code(report, "joint-contradiction") or by_code(report, "contradiction"):
            assert not _jointly_satisfiable(sources)
        for diag in by_code(report, "unsatisfiable"):
            index = int(diag.constraint.rsplit("oc", 1)[1])
            formula = parse_expression(sources[index - 1])
            assert not any(
                evaluate(formula, EvalContext(current=dict(zip(_VARS, values))))
                for values in itertools.product(_DOMAIN, repeat=len(_VARS))
            )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_formula_sources(), min_size=2, max_size=3))
    def test_pruned_constraints_are_really_entailed(self, sources):
        """Whenever pass 4 prunes a constraint, its keeper must entail it on
        every reachable state — enumeration over the whole domain."""
        schema = _schema_with_constraints(sources)
        for victim, keeper in prunable_constraints(schema).items():
            for values in itertools.product(_DOMAIN, repeat=len(_VARS)):
                state = dict(zip(_VARS, values))
                if evaluate(keeper.formula, EvalContext(current=state)):
                    assert evaluate(victim.formula, EvalContext(current=state))
