"""Tests for the symbolic solver (repro.constraints.solver).

Covers every entailment / conflict judgement stated in the paper, plus a
brute-force cross-check on randomly generated formulas.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    Path,
    Solver,
    TypeEnvironment,
    entails,
    is_satisfiable,
    parse_expression,
)
from repro.constraints.ast import And, Not, conjoin
from repro.constraints.evaluate import EvalContext, evaluate
from repro.types import BOOL, INT, REAL, STRING, RangeType


def formula(source):
    return parse_expression(source)


class TestPaperJudgements:
    """The entailments and conflicts the paper states explicitly."""

    def test_rating7_entails_rating4(self):
        """Section 5.2.1: phi ⊨ rating >= 4 since phi : rating >= 7."""
        assert entails(formula("rating >= 7"), formula("rating >= 4"))

    def test_rating3_does_not_entail_rating4(self):
        """Section 5.2.1: with the weakened oc2, rating >= 3 does not entail
        rating >= 4 and the comparison rule must be repaired."""
        assert not entails(formula("rating >= 3"), formula("rating >= 4"))

    def test_derived_constraint_from_rule_and_oc2(self):
        """Section 3: ref?=true plus (ref?=true implies rating>=7) entails
        rating >= 7."""
        premise = conjoin(
            [formula("ref? = true"), formula("ref? = true implies rating >= 7")]
        )
        assert entails(premise, formula("rating >= 7"))

    def test_intro_constraints_conflict_without_decision_function(self):
        """The intro's 'apparent conflict': trav_reimb in {10,20} vs {14,24}
        is unsatisfiable when read as constraints on one value."""
        solver = Solver()
        assert solver.conflicts(
            formula("trav_reimb in {10, 20}"), formula("trav_reimb in {14, 24}")
        )

    def test_inherited_constraint_also_satisfied(self):
        """Section 5.2.1: rating >= 7 satisfies the inherited RefereedPubl
        constraints rating >= 4 (conformed oc1) within the 1..10 domain."""
        env = TypeEnvironment({"rating": RangeType(1, 10)})
        premise = formula("rating >= 7")
        assert entails(premise, formula("rating >= 4"), env)
        assert entails(premise, formula("rating <= 10"), env)


class TestBasicSatisfiability:
    def test_simple_sat(self):
        assert is_satisfiable(formula("x >= 3"))

    def test_point_conflict(self):
        assert not is_satisfiable(formula("x = 3 and x = 4"))

    def test_interval_conflict(self):
        assert not is_satisfiable(formula("x < 3 and x > 5"))

    def test_touching_strict_bounds(self):
        assert not is_satisfiable(formula("x < 3 and x > 3"))
        assert is_satisfiable(formula("x <= 3 and x >= 3"))

    def test_membership_conflict(self):
        assert not is_satisfiable(formula("x in {1, 2} and x in {3, 4}"))

    def test_membership_overlap(self):
        assert is_satisfiable(formula("x in {1, 2} and x in {2, 3}"))

    def test_negated_membership(self):
        assert not is_satisfiable(formula("x in {1} and not x in {1, 2}"))

    def test_boolean_conflict(self):
        assert not is_satisfiable(formula("ref? = true and ref? = false"))

    def test_string_equality_conflict(self):
        assert not is_satisfiable(formula("name = 'ACM' and name = 'IEEE'"))

    def test_string_disequality_ok(self):
        assert is_satisfiable(formula("name != 'ACM' and name != 'IEEE'"))

    def test_disjunction_rescues(self):
        assert is_satisfiable(formula("(x = 1 or x = 5) and x > 3"))

    def test_implication_vacuous(self):
        assert is_satisfiable(formula("x = 1 implies x = 2"))

    def test_unsatisfiable_implication_chain(self):
        src = "x = 1 and (x = 1 implies y = 2) and (y = 2 implies x = 3)"
        assert not is_satisfiable(formula(src))


class TestTermVsTerm:
    def test_order_cycle(self):
        assert not is_satisfiable(formula("x < y and y < x"))

    def test_order_cycle_three(self):
        assert not is_satisfiable(formula("x < y and y < z and z < x"))

    def test_nonstrict_cycle_ok(self):
        assert is_satisfiable(formula("x <= y and y <= x"))

    def test_mixed_cycle_strict(self):
        assert not is_satisfiable(formula("x <= y and y < x"))

    def test_bounds_through_inequality(self):
        assert not is_satisfiable(formula("x <= y and y <= 5 and x >= 7"))

    def test_equality_merges_domains(self):
        assert not is_satisfiable(formula("x = y and x in {1, 2} and y in {3}"))

    def test_equality_sat(self):
        assert is_satisfiable(formula("x = y and x in {1, 2} and y in {2, 3}"))

    def test_disequality_singleton(self):
        assert not is_satisfiable(formula("x != y and x = 3 and y = 3"))

    def test_disequality_sat(self):
        assert is_satisfiable(formula("x != y and x = 3 and y = 4"))

    def test_disequality_prunes_finite_domain(self):
        assert not is_satisfiable(formula("x in {1} and y in {1} and x != y"))

    def test_offset_atoms(self):
        assert not is_satisfiable(formula("x + 1 <= y and y <= x"))
        assert is_satisfiable(formula("x + 1 <= y and y <= x + 1"))

    def test_paper_price_constraint(self):
        assert is_satisfiable(formula("ourprice <= shopprice"))
        assert not is_satisfiable(
            formula("ourprice <= shopprice and ourprice > shopprice")
        )

    def test_finite_domain_holes_feed_back(self):
        # x in {1, 3}, y = 2: x >= y forces x = 3; x <= y then contradicts.
        src = "x in {1, 3} and y = 2 and x >= y and x <= y"
        assert not is_satisfiable(formula(src))


class TestTypedEnvironment:
    def test_range_type_bounds(self):
        env = TypeEnvironment({"rating": RangeType(1, 5)})
        assert not is_satisfiable(formula("rating >= 6"), env)
        assert is_satisfiable(formula("rating >= 5"), env)

    def test_integral_tightening(self):
        env = TypeEnvironment({"rating": RangeType(1, 5)})
        # rating > 4 over integers means rating = 5, so rating < 5 conflicts.
        assert not is_satisfiable(formula("rating > 4 and rating < 5"), env)

    def test_real_type_no_tightening(self):
        env = TypeEnvironment({"price": REAL})
        assert is_satisfiable(formula("price > 4 and price < 5"), env)

    def test_bool_type(self):
        env = TypeEnvironment({"ref?": BOOL})
        assert not is_satisfiable(formula("ref? != true and ref? != false"), env)

    def test_string_type(self):
        env = TypeEnvironment({"name": STRING})
        assert is_satisfiable(formula("name != 'a' and name != 'b'"), env)

    def test_named_constants_fold(self):
        env = TypeEnvironment({}, {"MAX": 100})
        assert not is_satisfiable(formula("x < MAX and x > 200"), env)

    def test_named_set_constants(self):
        env = TypeEnvironment({}, {"KNOWN": {"ACM", "IEEE"}})
        assert not is_satisfiable(
            formula("name in KNOWN and name != 'ACM' and name != 'IEEE'"), env
        )

    def test_prefixed_environment(self):
        env = TypeEnvironment({"rating": RangeType(1, 5)}).prefixed("O'")
        assert not is_satisfiable(formula("O'.rating = 9"), env)

    def test_merged_environment(self):
        left = TypeEnvironment({"a": INT}, {"M": 5})
        right = TypeEnvironment({"b": INT}, {"N": 6})
        merged = left.merged_with(right)
        assert merged.attribute_types == {"a": INT, "b": INT}
        assert merged.constants == {"M": 5, "N": 6}


class TestOpaqueAtoms:
    def test_function_call_congruence(self):
        src = "contains(title, 'x') = true and contains(title, 'x') = false"
        assert not is_satisfiable(formula(src))

    def test_bare_function_atom_conflict(self):
        src = "contains(title, 'x') and not contains(title, 'x')"
        assert not is_satisfiable(formula(src))

    def test_different_calls_independent(self):
        src = "contains(title, 'x') and not contains(title, 'y')"
        assert is_satisfiable(formula(src))

    def test_aggregate_atom_conflict(self):
        src = (
            "(avg (collect x for x in self) over rating) < 4 "
            "and (avg (collect x for x in self) over rating) > 5"
        )
        assert not is_satisfiable(formula(src))

    def test_membership_in_attribute_opaque(self):
        src = "'a' in subjects and not 'a' in subjects"
        assert not is_satisfiable(formula(src))


class TestEntailment:
    def test_reflexive(self):
        phi = formula("rating >= 4")
        assert entails(phi, phi)

    def test_conjunction_entails_parts(self):
        premise = formula("a = 1 and b = 2")
        assert entails(premise, formula("a = 1"))
        assert entails(premise, formula("b = 2"))

    def test_part_does_not_entail_conjunction(self):
        assert not entails(formula("a = 1"), formula("a = 1 and b = 2"))

    def test_membership_entails_widened(self):
        assert entails(formula("x in {1, 2}"), formula("x in {1, 2, 3}"))

    def test_implication_modus_ponens(self):
        premise = formula("p = true and (p = true implies q >= 5)")
        assert entails(premise, formula("q >= 5"))

    def test_entails_false_detects_conflict(self):
        from repro.constraints.ast import FALSE

        assert entails(formula("x = 1 and x = 2"), FALSE)

    def test_conditional_entailment(self):
        premise = formula("publisher.name = 'ACM' implies rating >= 6")
        conclusion = formula("publisher.name = 'ACM' implies rating >= 5")
        assert entails(premise, conclusion)
        assert not entails(conclusion, premise)

    def test_equivalent(self):
        solver = Solver()
        assert solver.equivalent(formula("x >= 4"), formula("not x < 4"))
        assert not solver.equivalent(formula("x >= 4"), formula("x > 4"))


class TestDomainOf:
    def test_membership_domain(self):
        solver = Solver()
        dom = solver.domain_of(formula("x in {10, 20}"), "x")
        assert dom.enumerate() == (10, 20)

    def test_branch_union(self):
        solver = Solver()
        dom = solver.domain_of(formula("x = 1 or x = 5"), "x")
        assert dom.enumerate() == (1, 5)

    def test_typed_domain(self):
        solver = Solver(TypeEnvironment({"rating": RangeType(1, 10)}))
        dom = solver.domain_of(formula("rating >= 7"), "rating")
        assert dom.enumerate() == (7, 8, 9, 10)

    def test_unconstrained_path_is_type_domain(self):
        solver = Solver(TypeEnvironment({"rating": RangeType(1, 3)}))
        dom = solver.domain_of(formula("other = 1"), "rating")
        assert dom.enumerate() == (1, 2, 3)

    def test_unsat_formula_gives_bottom(self):
        solver = Solver()
        dom = solver.domain_of(formula("x = 1 and x = 2"), "x")
        assert dom.is_empty()

    def test_conditional_domain(self):
        solver = Solver(TypeEnvironment({"rating": RangeType(1, 10)}))
        premise = conjoin(
            [
                formula("publisher.name = 'ACM'"),
                formula("publisher.name = 'ACM' implies rating >= 6"),
            ]
        )
        dom = solver.domain_of(premise, "rating")
        assert dom.enumerate() == (6, 7, 8, 9, 10)


# ---------------------------------------------------------------------------
# Brute-force cross-check
# ---------------------------------------------------------------------------

_VARS = ("x", "y")
_DOMAIN = (0, 1, 2, 3)

_atom_strategy = st.one_of(
    st.builds(
        lambda var, op, val: f"{var} {op} {val}",
        st.sampled_from(_VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(_DOMAIN),
    ),
    st.builds(
        lambda var, vals: f"{var} in {{{', '.join(map(str, sorted(vals)))}}}",
        st.sampled_from(_VARS),
        st.frozensets(st.sampled_from(_DOMAIN), min_size=1, max_size=3),
    ),
    st.builds(
        lambda a, op, b: f"{a} {op} {b}",
        st.sampled_from(_VARS),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(_VARS),
    ),
)


@st.composite
def _formula_sources(draw, max_atoms=4):
    atoms = draw(st.lists(_atom_strategy, min_size=1, max_size=max_atoms))
    connectives = draw(
        st.lists(st.sampled_from(["and", "or", "implies"]), min_size=len(atoms) - 1, max_size=len(atoms) - 1)
    )
    source = atoms[0]
    for connective, atom in zip(connectives, atoms[1:]):
        source = f"({source}) {connective} ({atom})"
    return source


def _brute_force_sat(node, env):
    for values in itertools.product(_DOMAIN, repeat=len(_VARS)):
        state = dict(zip(_VARS, values))
        if evaluate(node, EvalContext(current=state)):
            return True
    return False


class TestBruteForceCrossCheck:
    @settings(max_examples=300, deadline=None)
    @given(_formula_sources())
    def test_solver_matches_enumeration(self, source):
        env = TypeEnvironment(
            {var: RangeType(_DOMAIN[0], _DOMAIN[-1]) for var in _VARS}
        )
        node = parse_expression(source)
        assert is_satisfiable(node, env) == _brute_force_sat(node, env)

    @settings(max_examples=150, deadline=None)
    @given(_formula_sources(3), _formula_sources(3))
    def test_entailment_matches_enumeration(self, premise_src, conclusion_src):
        env = TypeEnvironment(
            {var: RangeType(_DOMAIN[0], _DOMAIN[-1]) for var in _VARS}
        )
        premise = parse_expression(premise_src)
        conclusion = parse_expression(conclusion_src)
        expected = all(
            evaluate(conclusion, EvalContext(current=dict(zip(_VARS, values))))
            for values in itertools.product(_DOMAIN, repeat=len(_VARS))
            if evaluate(premise, EvalContext(current=dict(zip(_VARS, values))))
        )
        assert entails(premise, conclusion, env) == expected
