"""Tests for constraint evaluation against object states."""

import pytest

from repro.constraints import EvalContext, evaluate, parse_expression
from repro.constraints.evaluate import VACUOUS
from repro.errors import EvaluationError


def check(source, current=None, **kwargs):
    return evaluate(parse_expression(source), EvalContext(current=current, **kwargs))


class TestObjectConstraints:
    def test_price_comparison(self):
        book = {"ourprice": 20.0, "shopprice": 25.0}
        assert check("ourprice <= shopprice", book)
        assert not check("ourprice > shopprice", book)

    def test_membership_named_constant(self):
        book = {"publisher": "ACM"}
        constants = {"KNOWNPUBLISHERS": {"ACM", "IEEE"}}
        assert check("publisher in KNOWNPUBLISHERS", book, constants=constants)
        assert not check(
            "publisher in KNOWNPUBLISHERS", {"publisher": "X"}, constants=constants
        )

    def test_membership_set_literal(self):
        assert check("trav_reimb in {10, 20}", {"trav_reimb": 10})
        assert not check("trav_reimb in {10, 20}", {"trav_reimb": 15})

    def test_implication(self):
        ieee = {"publisher": {"name": "IEEE"}, "ref?": True}
        other = {"publisher": {"name": "X"}, "ref?": False}
        violating = {"publisher": {"name": "IEEE"}, "ref?": False}
        src = "publisher.name = 'IEEE' implies ref? = true"
        assert check(src, ieee)
        assert check(src, other)
        assert not check(src, violating)

    def test_nested_path_through_dicts(self):
        assert check("publisher.name = 'ACM'", {"publisher": {"name": "ACM"}})

    def test_boolean_connectives(self):
        state = {"a": 1, "b": 2}
        assert check("a = 1 and b = 2", state)
        assert check("a = 9 or b = 2", state)
        assert check("not a = 9", state)
        assert not check("not (a = 1)", state)

    def test_arithmetic(self):
        assert check("salary + bonus < 1500", {"salary": 1000, "bonus": 400})
        assert check("salary * 2 >= 2000", {"salary": 1000})
        assert check("salary / 2 = 500", {"salary": 1000})
        assert check("salary - 1 != 1000", {"salary": 1000})

    def test_contains_builtin(self):
        state = {"title": "Proceedings of VLDB"}
        assert check("contains(title, 'Proceed')", state)
        assert not check("contains(title, 'Journal')", state)

    def test_membership_in_set_attribute(self):
        state = {"subjects": {"databases", "networks"}}
        assert check("'databases' in subjects", state)
        assert not check("'compilers' in subjects", state)

    def test_missing_attribute_raises(self):
        with pytest.raises(EvaluationError):
            check("rating >= 2", {"title": "x"})

    def test_no_current_object_raises(self):
        with pytest.raises(EvaluationError):
            check("rating >= 2")

    def test_unknown_constant_raises(self):
        with pytest.raises(EvaluationError):
            check("x in UNKNOWN", {"x": 1})

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            check("frobnicate(x)", {"x": 1})

    def test_incomparable_types_raise(self):
        with pytest.raises(EvaluationError):
            check("x < 3", {"x": "abc"})


class TestBindings:
    def test_two_object_rule_condition(self):
        local = {"isbn": "111"}
        remote = {"isbn": "111"}
        ctx = EvalContext(bindings={"O": local, "O'": remote})
        assert evaluate(parse_expression("O.isbn = O'.isbn"), ctx)

    def test_binding_shadows_current(self):
        ctx = EvalContext(current={"x": 1}, bindings={"O": {"x": 2}})
        assert evaluate(parse_expression("O.x = 2"), ctx)
        assert evaluate(parse_expression("x = 1"), ctx)


class TestClassConstraints:
    def test_sum_aggregate(self):
        extent = [{"ourprice": 10.0}, {"ourprice": 20.0}]
        ctx = EvalContext(self_extent=extent, constants={"MAX": 100})
        src = "(sum (collect x for x in self) over ourprice) < MAX"
        assert evaluate(parse_expression(src), ctx)
        ctx_low = EvalContext(self_extent=extent, constants={"MAX": 25})
        assert not evaluate(parse_expression(src), ctx_low)

    def test_avg_aggregate_paper_cc1(self):
        extent = [{"rating": 2}, {"rating": 4}]
        ctx = EvalContext(self_extent=extent)
        src = "(avg (collect x for x in self) over rating) < 4"
        assert evaluate(parse_expression(src), ctx)

    def test_min_max_count(self):
        extent = [{"r": 1}, {"r": 5}]
        ctx = EvalContext(self_extent=extent)
        assert evaluate(parse_expression("(min (collect x for x in self) over r) = 1"), ctx)
        assert evaluate(parse_expression("(max (collect x for x in self) over r) = 5"), ctx)
        assert evaluate(parse_expression("(count (collect x for x in self) over r) = 2"), ctx)

    def test_empty_extent_sum_is_zero(self):
        ctx = EvalContext(self_extent=[], constants={"MAX": 1})
        src = "(sum (collect x for x in self) over p) < MAX"
        assert evaluate(parse_expression(src), ctx)

    def test_empty_extent_avg_is_vacuous(self):
        ctx = EvalContext(self_extent=[])
        src = "(avg (collect x for x in self) over p) < 4"
        assert evaluate(parse_expression(src), ctx)

    def test_key_constraint(self):
        ctx = EvalContext(self_extent=[{"isbn": "1"}, {"isbn": "2"}])
        assert evaluate(parse_expression("key isbn"), ctx)
        ctx_dup = EvalContext(self_extent=[{"isbn": "1"}, {"isbn": "1"}])
        assert not evaluate(parse_expression("key isbn"), ctx_dup)

    def test_composite_key(self):
        extent = [{"a": 1, "b": 1}, {"a": 1, "b": 2}]
        ctx = EvalContext(self_extent=extent)
        assert evaluate(parse_expression("key a, b"), ctx)
        assert not evaluate(parse_expression("key a"), ctx)


class TestDatabaseConstraints:
    def test_figure1_db1(self):
        """forall p in Publisher exists i in Item | i.publisher = p"""
        acm = {"name": "ACM"}
        springer = {"name": "Springer"}
        extents = {
            "Publisher": [acm, springer],
            "Item": [{"publisher": acm}, {"publisher": springer}],
        }
        src = "forall p in Publisher exists i in Item | i.publisher = p"
        assert evaluate(parse_expression(src), EvalContext(extents=extents))

    def test_figure1_db1_violated(self):
        acm = {"name": "ACM"}
        dangling = {"name": "Ghost"}
        extents = {
            "Publisher": [acm, dangling],
            "Item": [{"publisher": acm}],
        }
        src = "forall p in Publisher exists i in Item | i.publisher = p"
        assert not evaluate(parse_expression(src), EvalContext(extents=extents))

    def test_exists_only(self):
        extents = {"Item": [{"price": 5}]}
        assert evaluate(
            parse_expression("exists i in Item | i.price = 5"),
            EvalContext(extents=extents),
        )

    def test_unknown_extent_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(
                parse_expression("exists i in Nowhere | i.x = 1"), EvalContext()
            )


class TestVacuous:
    def test_vacuous_satisfies_comparisons(self):
        ctx = EvalContext(self_extent=[])
        for op in ("<", "<=", ">", ">=", "=", "!="):
            src = f"(avg (collect x for x in self) over p) {op} 4"
            assert evaluate(parse_expression(src), ctx)

    def test_vacuous_propagates_through_arithmetic(self):
        ctx = EvalContext(self_extent=[])
        src = "(avg (collect x for x in self) over p) + 1 < 4"
        assert evaluate(parse_expression(src), ctx)

    def test_vacuous_repr(self):
        assert "vacuous" in repr(VACUOUS)

    def test_negated_vacuous_comparison_agrees_with_equivalent(self):
        """Regression: ``not (avg ... > 5)`` and ``avg ... <= 5`` are
        logically equivalent, so both must be satisfied on an empty extent.
        Vacuous truth propagates through ``not`` instead of flipping."""
        ctx = EvalContext(self_extent=[])
        negated = "not ((avg (collect x for x in self) over p) > 5)"
        direct = "(avg (collect x for x in self) over p) <= 5"
        assert evaluate(parse_expression(direct), ctx)
        assert evaluate(parse_expression(negated), ctx)

    def test_vacuous_propagates_through_connectives(self):
        ctx = EvalContext(self_extent=[], current={"q": 1})
        avg = "(avg (collect x for x in self) over p)"
        # A strict operand still decides; vacuity absorbs otherwise.
        assert evaluate(parse_expression(f"{avg} > 5 and q = 1"), ctx)
        assert not evaluate(parse_expression(f"{avg} > 5 and q = 2"), ctx)
        assert evaluate(parse_expression(f"{avg} > 5 or q = 2"), ctx)
        assert evaluate(parse_expression(f"not ({avg} > 5 and q = 1)"), ctx)
        assert evaluate(parse_expression(f"{avg} > 5 implies q = 2"), ctx)
        assert evaluate(parse_expression(f"q = 1 implies {avg} > 5"), ctx)

    def test_de_morgan_agreement_on_vacuous_operands(self):
        ctx = EvalContext(self_extent=[], current={"q": 1})
        avg = "(avg (collect x for x in self) over p)"
        left = f"not ({avg} > 5 or q = 2)"
        right = f"(not ({avg} > 5)) and (not (q = 2))"
        assert bool(evaluate(parse_expression(left), ctx)) == bool(
            evaluate(parse_expression(right), ctx)
        )

    def test_vacuous_propagates_through_membership_negation(self):
        ctx = EvalContext(self_extent=[])
        avg = "(avg (collect x for x in self) over p)"
        assert evaluate(parse_expression(f"{avg} in {{1, 2}}"), ctx)
        assert evaluate(parse_expression(f"not ({avg} in {{1, 2}})"), ctx)

    def test_vacuous_propagates_through_quantifiers(self):
        extents = {"C": [{"q": 1}, {"q": 2}]}
        ctx = EvalContext(extents=extents, self_extent=[])
        avg = "(avg (collect x for x in self) over p)"
        # not(forall c: vacuous) must agree with exists c: not(vacuous).
        assert evaluate(
            parse_expression(f"not (forall c in C | {avg} > 5)"), ctx
        )
        assert evaluate(
            parse_expression(f"exists c in C | not ({avg} > 5)"), ctx
        )


class TestAggregateErrorContract:
    def test_non_numeric_sum_raises_evaluation_error(self):
        """Regression: a non-numeric aggregate operand on the scan path must
        raise EvaluationError (the wrapping contract comparisons/arithmetic
        honor), never a raw TypeError."""
        ctx = EvalContext(self_extent=[{"p": "not a number"}])
        src = "(sum (collect x for x in self) over p) < 5"
        with pytest.raises(EvaluationError):
            evaluate(parse_expression(src), ctx)

    def test_non_numeric_avg_raises_evaluation_error(self):
        ctx = EvalContext(self_extent=[{"p": "abc"}, {"p": "def"}])
        src = "(avg (collect x for x in self) over p) < 5"
        with pytest.raises(EvaluationError):
            evaluate(parse_expression(src), ctx)

    def test_mixed_type_min_raises_evaluation_error(self):
        ctx = EvalContext(self_extent=[{"p": 1}, {"p": "abc"}])
        src = "(min (collect x for x in self) over p) < 5"
        with pytest.raises(EvaluationError):
            evaluate(parse_expression(src), ctx)

    def test_comparable_non_numbers_still_aggregate(self):
        # Homogeneous orderable values keep working on min/max.
        ctx = EvalContext(self_extent=[{"p": "b"}, {"p": "a"}])
        src = "(min (collect x for x in self) over p) = 'a'"
        assert evaluate(parse_expression(src), ctx)


class TestCustomAccessor:
    def test_accessor_hook(self):
        class Wrapped:
            def __init__(self, state):
                self.state = state

        def get_attr(obj, name):
            if isinstance(obj, Wrapped):
                return obj.state[name]
            return obj[name]

        ctx = EvalContext(current=Wrapped({"x": 7}), get_attr=get_attr)
        assert evaluate(parse_expression("x = 7"), ctx)

    def test_custom_function_table(self):
        ctx = EvalContext(current={"x": 4}, functions={"double": lambda v: v * 2})
        assert evaluate(parse_expression("double(x) = 8"), ctx)
