"""Tests for the TM type system (repro.types)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeSystemError
from repro.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    ClassRef,
    EnumType,
    RangeType,
    SetType,
    check_value,
    coerce_value,
    default_value,
    parse_type,
)


class TestPrimitives:
    def test_int_contains_integers(self):
        assert INT.contains(5)
        assert INT.contains(-3)

    def test_int_rejects_bool(self):
        assert not INT.contains(True)

    def test_int_rejects_float(self):
        assert not INT.contains(1.5)

    def test_real_contains_both(self):
        assert REAL.contains(1.5)
        assert REAL.contains(2)

    def test_real_rejects_bool(self):
        assert not REAL.contains(False)

    def test_string(self):
        assert STRING.contains("IEEE")
        assert not STRING.contains(3)

    def test_bool(self):
        assert BOOL.contains(True)
        assert not BOOL.contains(1)

    def test_numeric_flags(self):
        assert INT.is_numeric and INT.is_integral
        assert REAL.is_numeric and not REAL.is_integral
        assert not STRING.is_numeric

    def test_describe(self):
        assert INT.describe() == "int"
        assert str(REAL) == "real"


class TestRangeType:
    def test_rating_range(self):
        rating = RangeType(1, 5)
        assert rating.contains(1)
        assert rating.contains(5)
        assert not rating.contains(0)
        assert not rating.contains(6)

    def test_rejects_non_integer(self):
        assert not RangeType(1, 5).contains(2.5)

    def test_rejects_bool(self):
        assert not RangeType(0, 1).contains(True)

    def test_empty_range_raises(self):
        with pytest.raises(TypeSystemError):
            RangeType(5, 1)

    def test_describe(self):
        assert RangeType(1, 10).describe() == "1..10"

    def test_structural_equality(self):
        assert RangeType(1, 5) == RangeType(1, 5)
        assert hash(RangeType(1, 5)) == hash(RangeType(1, 5))


class TestSetType:
    def test_p_string(self):
        editors = SetType(STRING)
        assert editors.contains({"Gray", "Reuter"})
        assert editors.contains(frozenset())
        assert not editors.contains({"Gray", 3})
        assert not editors.contains(["Gray"])

    def test_describe(self):
        assert SetType(STRING).describe() == "P string"


class TestEnumType:
    def test_membership(self):
        tariffs = EnumType(frozenset({10, 20}))
        assert tariffs.contains(10)
        assert not tariffs.contains(15)

    def test_numeric_detection(self):
        assert EnumType(frozenset({10, 20})).is_numeric
        assert EnumType(frozenset({10, 20})).is_integral
        assert not EnumType(frozenset({"a"})).is_numeric


class TestClassRef:
    def test_accepts_identifiers(self):
        publisher = ClassRef("Publisher")
        assert publisher.contains("Publisher#3")
        assert not publisher.contains(True)

    def test_describe(self):
        assert ClassRef("Publisher").describe() == "Publisher"


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("int", INT),
            ("real", REAL),
            ("string", STRING),
            ("boolean", BOOL),
            ("bool", BOOL),
            ("1..5", RangeType(1, 5)),
            ("l..lO".replace("l", "1").replace("O", "0"), RangeType(1, 10)),
            ("P string", SetType(STRING)),
            ("Pstring", SetType(STRING)),
            ("Publisher", ClassRef("Publisher")),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_type(text) == expected

    def test_parse_range_with_spaces(self):
        assert parse_type("1 .. 10") == RangeType(1, 10)

    def test_parse_empty_raises(self):
        with pytest.raises(TypeSystemError):
            parse_type("")

    def test_parse_garbage_raises(self):
        with pytest.raises(TypeSystemError):
            parse_type("<<not a type>>")


class TestValues:
    def test_check_value_passes(self):
        check_value(3, RangeType(1, 5), "Proceedings.rating")

    def test_check_value_fails_with_context(self):
        with pytest.raises(TypeSystemError, match="Proceedings.rating"):
            check_value(11, RangeType(1, 10), "Proceedings.rating")

    def test_coerce_int_to_real(self):
        assert coerce_value(3, REAL) == 3.0

    def test_coerce_list_to_set(self):
        assert coerce_value(["a", "b"], SetType(STRING)) == frozenset({"a", "b"})

    def test_coerce_failure(self):
        with pytest.raises(TypeSystemError):
            coerce_value("abc", INT)

    @pytest.mark.parametrize(
        "tm_type",
        [INT, REAL, STRING, BOOL, RangeType(2, 9), SetType(STRING), EnumType(frozenset({"x"})), ClassRef("C")],
    )
    def test_default_value_is_member(self, tm_type):
        assert tm_type.contains(default_value(tm_type))

    @given(st.integers(-100, 100), st.integers(0, 100))
    def test_range_membership_matches_python(self, low, width):
        rng = RangeType(low, low + width)
        for probe in (low - 1, low, low + width, low + width + 1):
            assert rng.contains(probe) == (low <= probe <= low + width)
