"""The ``repro lint`` command: exit codes 0/1/2, text and JSON output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.fixtures.schemas import bookseller_source, cslibrary_source

CLEAN = cslibrary_source()

WARN_ONLY = """
Database Warny
Class Widget
  attributes
    size : int
  object constraints
    oc1 : size >= 3
    oc2 : size >= 2
end Widget
"""

ERRORS = """
Database Broken
Class Widget
  attributes
    size : int
    label : string
  object constraints
    oc1 : size > 10 and size < 5
    oc2 : label > 3
end Widget
"""


@pytest.fixture
def schema_file(tmp_path):
    def write(source: str, name: str = "schema.tm") -> str:
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return write


class TestLintExitCodes:
    def test_clean_schema_exits_zero(self, schema_file, capsys):
        assert main(["lint", schema_file(CLEAN)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_warnings_exit_one(self, schema_file, capsys):
        assert main(["lint", schema_file(WARN_ONLY)]) == 1
        out = capsys.readouterr().out
        assert "[redundant]" in out
        assert "Warny.Widget.oc2" in out

    def test_errors_exit_two(self, schema_file, capsys):
        assert main(["lint", schema_file(ERRORS)]) == 2
        out = capsys.readouterr().out
        assert "[unsatisfiable]" in out
        assert "[incomparable-types]" in out

    def test_worst_file_wins_across_many(self, schema_file, capsys):
        paths = [
            schema_file(CLEAN, "clean.tm"),
            schema_file(WARN_ONLY, "warn.tm"),
        ]
        assert main(["lint", *paths]) == 1
        out = capsys.readouterr().out
        assert "clean.tm" in out and "warn.tm" in out

    def test_unreadable_file_aborts(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path / "missing.tm")])

    def test_unparsable_file_aborts(self, schema_file):
        with pytest.raises(SystemExit, match="cannot parse"):
            main(["lint", schema_file("Database\n")])


class TestCommittedFixtures:
    """The seeded fixtures under examples/lint/ that the CI smoke walks
    through exit codes 0/1/2 must keep producing exactly those codes."""

    FIXTURES = Path(__file__).resolve().parent.parent / "examples" / "lint"

    def test_clean_fixture_exits_zero(self):
        assert main(["lint", str(self.FIXTURES / "clean.tm")]) == 0

    def test_redundant_fixture_exits_one(self, capsys):
        assert main(["lint", str(self.FIXTURES / "redundant.tm")]) == 1
        assert "[redundant]" in capsys.readouterr().out

    def test_broken_fixture_exits_two(self, capsys):
        assert main(["lint", str(self.FIXTURES / "broken.tm")]) == 2
        out = capsys.readouterr().out
        assert "[unsatisfiable]" in out
        assert "[incomparable-types]" in out


class TestLintOutput:
    def test_json_format_carries_locations(self, schema_file, capsys):
        assert main(["lint", "--format", "json", schema_file(ERRORS)]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        (report,) = payload["schemas"].values()
        assert report["schema"] == "Broken"
        assert report["errors"] >= 2
        located = [d for d in report["diagnostics"] if d["severity"] == "error"]
        assert all("line" in d and "column" in d for d in located)

    def test_no_info_suppresses_honest_unknowns(self, schema_file, capsys):
        path = schema_file(bookseller_source())
        assert main(["lint", path]) == 0
        assert "[analysis-unknown]" in capsys.readouterr().out
        assert main(["lint", "--no-info", path]) == 0
        assert "[analysis-unknown]" not in capsys.readouterr().out

    def test_positions_cite_the_tm_file(self, schema_file, capsys):
        # The contradiction of ERRORS sits on line 8 of the file written
        # (leading newline shifts everything by one).
        main(["lint", schema_file(ERRORS)])
        out = capsys.readouterr().out
        assert "(line 8, col" in out
