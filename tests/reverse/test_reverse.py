"""Tests for the reverse-engineering substrate (repro.reverse)."""

import pytest

from repro.constraints import ConstraintKind, parse_expression
from repro.errors import ParseError, SchemaError
from repro.reverse import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    translate_schema,
)
from repro.reverse.checks import parse_sql_check, sql_check_to_source
from repro.types import INT, REAL, STRING, ClassRef, EnumType


def personnel_relational() -> RelationalSchema:
    schema = RelationalSchema("PersonnelSQL")
    schema.add_table(
        Table(
            "Employee",
            columns=[
                Column("ssn", "varchar(16)"),
                Column("salary", "real", check="salary < 1500"),
                Column("trav_reimb", "int", check="trav_reimb IN (10, 20)"),
            ],
            primary_key=("ssn",),
        )
    )
    return schema


def library_relational() -> RelationalSchema:
    schema = RelationalSchema("LibrarySQL")
    schema.add_table(
        Table(
            "Publisher",
            columns=[
                Column("pid", "int"),
                Column("name", "varchar(100)", unique=True),
                Column("location", "varchar(100)"),
            ],
            primary_key=("pid",),
        )
    )
    schema.add_table(
        Table(
            "Item",
            columns=[
                Column("isbn", "varchar(20)"),
                Column("title", "text"),
                Column("publisher", "int"),
                Column("shopprice", "real"),
                Column("libprice", "real"),
            ],
            primary_key=("isbn",),
            foreign_keys=[ForeignKey("publisher", "Publisher", "pid")],
            checks=["libprice <= shopprice"],
        )
    )
    schema.add_table(
        Table(
            "Proceedings",
            columns=[
                Column("isbn", "varchar(20)"),
                Column("refereed", "boolean"),
                Column("rating", "int", check="rating BETWEEN 1 AND 10"),
            ],
            primary_key=("isbn",),
            foreign_keys=[ForeignKey("isbn", "Item", "isbn")],
            checks=["NOT refereed = TRUE OR rating >= 7"],
        )
    )
    return schema


class TestCheckTranslation:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("salary < 1500", "salary < 1500"),
            ("trav_reimb IN (10, 20)", "trav_reimb  in {10, 20}"),
            ("x <> 3", "x != 3"),
            ("rating BETWEEN 1 AND 5", "(rating >= 1 and rating <= 5)"),
            ("a = 1 AND b = 2", "a = 1 and b = 2"),
            ("NOT x = TRUE", "not x = true"),
        ],
    )
    def test_source_translation(self, sql, expected):
        assert sql_check_to_source(sql) == expected

    def test_parse_sql_check(self):
        assert parse_sql_check("trav_reimb IN (10, 20)") == parse_expression(
            "trav_reimb in {10, 20}"
        )

    def test_between_parses(self):
        assert parse_sql_check("rating BETWEEN 1 AND 5") == parse_expression(
            "rating >= 1 and rating <= 5"
        )

    def test_string_literals_survive(self):
        node = parse_sql_check("publisher IN ('ACM', 'IEEE')")
        assert node == parse_expression("publisher in {'ACM', 'IEEE'}")

    def test_bad_check_raises_with_context(self):
        with pytest.raises(ParseError, match="cannot translate SQL CHECK"):
            parse_sql_check("salary <")


class TestTranslation:
    def test_personnel_round_trip(self):
        tm = translate_schema(personnel_relational())
        employee = tm.class_named("Employee")
        assert employee.attributes["salary"].tm_type == REAL
        constraints = {c.name: c for c in employee.constraints}
        assert constraints["oc1"].formula == parse_expression("salary < 1500")
        assert constraints["oc2"].formula == parse_expression(
            "trav_reimb in {10, 20}"
        )
        assert constraints["cc1"].formula == parse_expression("key ssn")

    def test_enumerated_check_tightens_type(self):
        tm = translate_schema(personnel_relational())
        trav_type = tm.attribute_type("Employee", "trav_reimb")
        assert trav_type == EnumType(frozenset({10, 20}))

    def test_foreign_key_becomes_reference(self):
        tm = translate_schema(library_relational())
        assert tm.attribute_type("Item", "publisher") == ClassRef("Publisher")

    def test_foreign_key_becomes_database_constraint(self):
        tm = translate_schema(library_relational())
        formulas = [c.formula for c in tm.database_constraints]
        assert parse_expression(
            "forall c in Item exists p in Publisher | c.publisher = p"
        ) in formulas

    def test_pk_as_fk_becomes_subclass(self):
        tm = translate_schema(library_relational())
        proceedings = tm.class_named("Proceedings")
        assert proceedings.parent == "Item"
        # The shared key column is not repeated and no reference attr added.
        assert "isbn" not in proceedings.attributes
        # Inherited through the hierarchy instead:
        assert "isbn" in tm.effective_attributes("Proceedings")

    def test_subclass_has_no_duplicate_key_constraint(self):
        tm = translate_schema(library_relational())
        proceedings = tm.class_named("Proceedings")
        assert all("key" not in str(c.formula) for c in proceedings.constraints)

    def test_unique_column_becomes_key(self):
        tm = translate_schema(library_relational())
        publisher = tm.class_named("Publisher")
        keys = [c for c in publisher.constraints if "key" in str(c.formula).lower()]
        assert len(keys) == 2  # pid (primary) + name (unique)

    def test_table_check_with_connectives(self):
        tm = translate_schema(library_relational())
        proceedings = tm.class_named("Proceedings")
        formulas = [c.formula for c in proceedings.constraints]
        assert parse_expression("not refereed = true or rating >= 7") in formulas

    def test_translated_schema_validates(self):
        from repro.tm import validate_schema

        issues = validate_schema(translate_schema(library_relational()))
        assert issues == []

    def test_translated_schema_runs_in_engine(self):
        from repro.engine import ObjectStore

        tm = translate_schema(personnel_relational())
        store = ObjectStore(tm)
        store.insert("Employee", ssn="1", salary=1200.0, trav_reimb=10)
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            store.insert("Employee", ssn="2", salary=1600.0, trav_reimb=10)


class TestRelationalModel:
    def test_unsupported_type(self):
        with pytest.raises(SchemaError):
            Column("x", "blob")

    def test_type_length_stripped(self):
        assert Column("x", "VARCHAR(30)").sql_type == "varchar"

    def test_duplicate_table(self):
        schema = RelationalSchema("S")
        schema.add_table(Table("T", [Column("a", "int")]))
        with pytest.raises(SchemaError):
            schema.add_table(Table("T", [Column("a", "int")]))

    def test_missing_pk_column(self):
        schema = RelationalSchema("S")
        with pytest.raises(SchemaError):
            schema.add_table(Table("T", [Column("a", "int")], primary_key=("b",)))

    def test_missing_fk_column(self):
        schema = RelationalSchema("S")
        with pytest.raises(SchemaError):
            schema.add_table(
                Table(
                    "T",
                    [Column("a", "int")],
                    foreign_keys=[ForeignKey("b", "U", "x")],
                )
            )

    def test_dangling_fk_target(self):
        schema = RelationalSchema("S")
        schema.add_table(
            Table(
                "T",
                [Column("a", "int")],
                foreign_keys=[ForeignKey("a", "Ghost", "x")],
            )
        )
        with pytest.raises(SchemaError):
            translate_schema(schema)
