"""Tests for the unified ValueSet facade (repro.domains.valueset)."""

import pytest

from repro.domains import (
    BOTTOM,
    NumericSet,
    TopSet,
    boolean_set,
    numeric_points,
    numeric_range,
    type_to_valueset,
)
from repro.domains.valueset import DiscreteSet, from_values
from repro.errors import SolverError
from repro.types import BOOL, INT, REAL, STRING, ClassRef, EnumType, RangeType, SetType


class TestNumericSet:
    def test_integral_tightening_on_construction(self):
        strict = numeric_range(3, None, integral=True, low_strict=True)
        assert not strict.contains(3)
        assert strict.contains(4)
        assert strict.lower_bound() == (4, False)

    def test_contains_rejects_non_numbers(self):
        assert not numeric_range(1, 5).contains("three")
        assert not numeric_range(0, 1).contains(True)

    def test_integral_rejects_fractions(self):
        assert not numeric_range(1, 5, integral=True).contains(2.5)
        assert numeric_range(1, 5).contains(2.5)

    def test_intersect_keeps_integrality(self):
        mixed = numeric_range(1, 10, integral=True).intersect(numeric_range(2.5, 7.5))
        assert mixed.enumerate() == (3, 4, 5, 6, 7)

    def test_union_drops_integrality_when_mixed(self):
        union = numeric_range(1, 2, integral=True).union_with(numeric_range(5.5, 6.5))
        assert union.contains(5.7)

    def test_type_clash_raises(self):
        with pytest.raises(SolverError):
            numeric_range(1, 5).intersect(DiscreteSet.of("a"))

    def test_subset_integral_enumeration(self):
        # {2, 4} over integers fits inside the union [1,2] ∪ [4,5].
        points = numeric_points([2, 4])
        container = numeric_range(1, 2).union_with(numeric_range(4, 5))
        assert points.is_subset_of(container)

    def test_enumerate_non_integral_points(self):
        assert numeric_points([1.5, 2.5]).enumerate() == (1.5, 2.5)

    def test_empty(self):
        assert NumericSet.empty().is_empty()
        assert not NumericSet.all().is_empty()


class TestDiscreteSet:
    def test_membership(self):
        names = DiscreteSet.of("ACM", "IEEE")
        assert names.contains("ACM")
        assert not names.contains("VLDB")

    def test_complement(self):
        not_acm = DiscreteSet.of("ACM").complement()
        assert not not_acm.contains("ACM")
        assert not_acm.contains("anything else")

    def test_type_clash(self):
        with pytest.raises(SolverError):
            DiscreteSet.of("a").intersect(numeric_range(1, 2))


class TestTopAndBottom:
    def test_top_absorbs(self):
        top = TopSet()
        nums = numeric_range(1, 5)
        assert top.intersect(nums) is nums
        assert nums.intersect(top) is nums
        assert top.union_with(nums) is top

    def test_top_is_singleton(self):
        assert TopSet() is TopSet()

    def test_bottom(self):
        assert BOTTOM.is_empty()
        assert BOTTOM.is_subset_of(numeric_range(1, 2))
        assert BOTTOM.complement() is TopSet()
        assert TopSet().complement() is BOTTOM

    def test_bottom_enumerates_empty(self):
        assert BOTTOM.enumerate() == ()


class TestBooleanSet:
    def test_full_boolean(self):
        both = boolean_set()
        assert both.contains(True)
        assert both.contains(False)

    def test_complement_within_universe(self):
        only_true = boolean_set(True)
        only_false = only_true.complement()
        assert only_false.contains(False)
        assert not only_false.contains(True)
        assert only_false.enumerate() == (False,)


class TestFromValues:
    def test_numeric(self):
        assert from_values([10, 20]).contains(10)

    def test_strings(self):
        assert from_values(["a"]).contains("a")

    def test_empty(self):
        assert from_values([]).is_empty()


class TestTypeToValueSet:
    def test_range(self):
        rating = type_to_valueset(RangeType(1, 5))
        assert rating.enumerate() == (1, 2, 3, 4, 5)

    def test_int_real(self):
        assert type_to_valueset(INT).contains(10**9)
        assert not type_to_valueset(INT).contains(0.5)
        assert type_to_valueset(REAL).contains(0.5)

    def test_bool(self):
        assert type_to_valueset(BOOL).enumerate() == (False, True)

    def test_string_is_cofinite_top(self):
        strings = type_to_valueset(STRING)
        assert strings.contains("anything")
        assert not strings.is_empty()

    def test_enum(self):
        reimb = type_to_valueset(EnumType(frozenset({10, 20})))
        assert reimb.enumerate() == (10, 20)

    def test_uninterpreted_types_are_top(self):
        assert type_to_valueset(SetType(STRING)) is TopSet()
        assert type_to_valueset(ClassRef("Publisher")) is TopSet()
        assert type_to_valueset(None) is TopSet()
