"""Tests for finite/co-finite atom sets (repro.domains.discrete)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.domains.discrete import AtomSet

atoms = st.sampled_from(["ACM", "IEEE", "Springer", "Elsevier", "VLDB"])


@st.composite
def atom_sets(draw):
    values = draw(st.frozensets(atoms, max_size=4))
    return AtomSet(values, complemented=draw(st.booleans()))


class TestBasics:
    def test_finite_membership(self):
        publishers = AtomSet.of("ACM", "IEEE")
        assert publishers.contains("ACM")
        assert not publishers.contains("Springer")

    def test_cofinite_membership(self):
        not_acm = AtomSet(["ACM"], complemented=True)
        assert not not_acm.contains("ACM")
        assert not_acm.contains("Springer")

    def test_empty_and_top(self):
        assert AtomSet.empty().is_empty()
        assert not AtomSet.top().is_empty()
        assert AtomSet.top().is_top()

    def test_finite_values(self):
        assert AtomSet.of("x").finite_values() == frozenset({"x"})
        assert AtomSet.top().finite_values() is None

    def test_universe_normalises_complement(self):
        universe = frozenset({True, False})
        not_true = AtomSet([True], complemented=True, universe=universe)
        assert not not_true.complemented
        assert not_true.values == frozenset({False})

    def test_universe_top_detection(self):
        universe = frozenset({True, False})
        both = AtomSet(universe, universe=universe)
        assert both.is_top()


class TestAlgebra:
    def test_intersect_finite(self):
        a = AtomSet.of("ACM", "IEEE")
        b = AtomSet.of("IEEE", "Springer")
        assert a.intersect(b) == AtomSet.of("IEEE")

    def test_intersect_with_cofinite(self):
        a = AtomSet.of("ACM", "IEEE")
        not_acm = AtomSet(["ACM"], complemented=True)
        assert a.intersect(not_acm) == AtomSet.of("IEEE")

    def test_union_cofinite(self):
        not_acm = AtomSet(["ACM"], complemented=True)
        with_acm = not_acm.union(AtomSet.of("ACM"))
        assert with_acm.is_top()

    def test_subset_finite_in_cofinite(self):
        assert AtomSet.of("IEEE").is_subset(AtomSet(["ACM"], complemented=True))
        assert not AtomSet.of("ACM").is_subset(AtomSet(["ACM"], complemented=True))

    def test_cofinite_never_inside_finite(self):
        assert not AtomSet.top().is_subset(AtomSet.of("ACM"))

    def test_cofinite_subset_cofinite(self):
        smaller = AtomSet(["ACM", "IEEE"], complemented=True)
        bigger = AtomSet(["ACM"], complemented=True)
        assert smaller.is_subset(bigger)
        assert not bigger.is_subset(smaller)

    @given(atom_sets(), atom_sets(), atoms)
    def test_intersection_semantics(self, a, b, probe):
        assert a.intersect(b).contains(probe) == (a.contains(probe) and b.contains(probe))

    @given(atom_sets(), atom_sets(), atoms)
    def test_union_semantics(self, a, b, probe):
        assert a.union(b).contains(probe) == (a.contains(probe) or b.contains(probe))

    @given(atom_sets(), atoms)
    def test_complement_semantics(self, a, probe):
        assert a.complement().contains(probe) == (not a.contains(probe))

    @given(atom_sets())
    def test_double_complement(self, a):
        assert a.complement().complement() == a

    @given(atom_sets(), atom_sets())
    def test_subset_via_difference(self, a, b):
        assert a.is_subset(b) == a.difference(b).is_empty()

    @given(atom_sets(), atom_sets())
    def test_de_morgan(self, a, b):
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert lhs == rhs
