"""Tests for pointwise domain combination (repro.domains.combine).

This is the machinery behind the paper's intro example: travel reimbursement
tariffs {10, 20} and {14, 24} combined under the ``avg`` decision function
yield the derived global constraint trav-reimb ∈ {12, 17, 22}.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains import combine_numeric, combine_pointwise, numeric_points, numeric_range
from repro.domains.combine import POINT_FUNCTIONS
from repro.domains.valueset import DiscreteSet, TopSet
from repro.errors import SolverError


class TestPaperIntroExample:
    def test_trav_reimb_avg(self):
        """DB1 trav-reimb ∈ {10,20}, DB2 trav-reimb ∈ {14,24}, df = avg
        derives the paper's global constraint trav-reimb ∈ {12,17,22}."""
        local = numeric_points([10, 20])
        remote = numeric_points([14, 24])
        combined = combine_numeric(local, remote, "avg")
        assert combined.enumerate() == (12, 17, 22)

    def test_acm_rating_avg(self):
        """Local rating >= 4 and remote rating >= 6 on the 1..10 scale under
        avg give rating >= 5 (the paper's Section 5.2.1 derivation)."""
        local = numeric_range(4, 10, integral=True)
        remote = numeric_range(6, 10, integral=True)
        combined = combine_numeric(local, remote, "avg")
        assert combined.lower_bound() == (5, False)
        assert combined.upper_bound() == (10, False)


class TestIntervalCombination:
    def test_avg_of_unbounded(self):
        left = numeric_range(4, None)
        right = numeric_range(6, None)
        combined = combine_numeric(left, right, "avg")
        assert combined.lower_bound() == (5, False)
        assert combined.upper_bound() == (None, False)

    def test_max_bounds(self):
        left = numeric_range(1, 5)
        right = numeric_range(3, 4)
        combined = combine_numeric(left, right, "max")
        assert combined.lower_bound() == (3, False)
        assert combined.upper_bound() == (5, False)

    def test_min_bounds(self):
        left = numeric_range(1, 5)
        right = numeric_range(3, 4)
        combined = combine_numeric(left, right, "min")
        assert combined.lower_bound() == (1, False)
        assert combined.upper_bound() == (4, False)

    def test_max_with_unbounded_low(self):
        left = numeric_range(None, 5)
        right = numeric_range(3, 4)
        combined = combine_numeric(left, right, "max")
        assert combined.lower_bound() == (3, False)
        assert combined.upper_bound() == (5, False)

    def test_sum_diff(self):
        left = numeric_range(1, 2)
        right = numeric_range(10, 20)
        assert combine_numeric(left, right, "sum").lower_bound() == (11, False)
        assert combine_numeric(left, right, "diff").upper_bound() == (-8, False)

    def test_empty_operand_gives_empty(self):
        assert combine_numeric(numeric_points([]), numeric_range(1, 2), "avg").is_empty()


class TestPointwiseDispatch:
    def test_first_second_projections(self):
        left = DiscreteSet.of("CSLibrary")
        right = DiscreteSet.of("Bookseller")
        assert combine_pointwise(left, right, "first") is left
        assert combine_pointwise(left, right, "second") is right

    def test_top_operand_is_top(self):
        assert isinstance(combine_pointwise(TopSet(), numeric_range(1, 2), "avg"), TopSet)

    def test_settling_on_atoms_unions(self):
        left = DiscreteSet.of("a")
        right = DiscreteSet.of("b")
        combined = combine_pointwise(left, right, "max")
        assert combined.contains("a") and combined.contains("b")

    def test_eliminating_on_atoms_raises(self):
        with pytest.raises(SolverError):
            combine_pointwise(DiscreteSet.of("a"), DiscreteSet.of("b"), "avg")

    def test_unknown_op_raises(self):
        with pytest.raises(SolverError):
            combine_numeric(numeric_range(1, 2), numeric_range(1, 2), "median")


points_strategy = st.lists(st.integers(-20, 20), min_size=1, max_size=4)
ops = st.sampled_from(sorted(POINT_FUNCTIONS))


class TestSoundness:
    @given(points_strategy, points_strategy, ops)
    def test_finite_combination_is_exact(self, left_points, right_points, op):
        fn = POINT_FUNCTIONS[op]
        combined = combine_numeric(
            numeric_points(left_points), numeric_points(right_points), op
        )
        expected = {fn(a, b) for a in left_points for b in right_points}
        for value in expected:
            assert combined.contains(value)
        enumerated = combined.enumerate()
        assert enumerated is not None
        assert set(enumerated) == expected

    @given(
        st.integers(-20, 0),
        st.integers(1, 20),
        st.integers(-20, 0),
        st.integers(1, 20),
        ops,
        st.integers(-20, 20),
        st.integers(-20, 20),
    )
    def test_interval_combination_is_sound(self, l1, w1, l2, w2, op, a_off, b_off):
        left = numeric_range(l1, l1 + w1)
        right = numeric_range(l2, l2 + w2)
        a = min(max(l1, a_off), l1 + w1)
        b = min(max(l2, b_off), l2 + w2)
        combined = combine_numeric(left, right, op)
        assert combined.contains(POINT_FUNCTIONS[op](a, b))
