"""Tests for intervals and interval sets (repro.domains.interval)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.domains.interval import Interval, IntervalSet


# -- strategies ---------------------------------------------------------------

small_values = st.integers(-20, 20)


@st.composite
def intervals(draw):
    low = draw(st.one_of(st.none(), small_values))
    high = draw(st.one_of(st.none(), small_values))
    return Interval(low, high, draw(st.booleans()), draw(st.booleans()))


@st.composite
def interval_sets(draw):
    return IntervalSet(draw(st.lists(intervals(), max_size=4)))


probe_values = st.one_of(
    st.integers(-22, 22),
    st.sampled_from([-20.5, -0.5, 0.5, 3.5, 19.5, 20.5]),
)


class TestInterval:
    def test_closed_contains_endpoints(self):
        assert Interval(1, 5).contains(1)
        assert Interval(1, 5).contains(5)

    def test_open_excludes_endpoints(self):
        interval = Interval(1, 5, low_open=True, high_open=True)
        assert not interval.contains(1)
        assert not interval.contains(5)
        assert interval.contains(3)

    def test_unbounded(self):
        assert Interval(None, 5).contains(-1000)
        assert Interval(5, None).contains(1000)
        assert Interval().contains(0)

    def test_empty_detection(self):
        assert Interval(5, 1).is_empty()
        assert Interval(3, 3, low_open=True).is_empty()
        assert not Interval(3, 3).is_empty()

    def test_point(self):
        assert Interval(3, 3).is_point()
        assert not Interval(3, 4).is_point()

    def test_intersect(self):
        result = Interval(1, 5).intersect(Interval(3, 8))
        assert result == Interval(3, 5)

    def test_intersect_openness(self):
        result = Interval(1, 5, high_open=True).intersect(Interval(3, 5))
        assert result == Interval(3, 5, high_open=True)

    def test_describe(self):
        assert Interval(1, 5).describe() == "[1, 5]"
        assert Interval(None, 5, high_open=True).describe() == "(-inf, 5)"
        assert Interval(3, 3).describe() == "{3}"


class TestIntervalSetBasics:
    def test_points_constructor(self):
        points = IntervalSet.points([10, 20])
        assert points.contains(10)
        assert points.contains(20)
        assert not points.contains(15)
        assert points.finite_values() == (10, 20)

    def test_normalisation_merges_overlaps(self):
        merged = IntervalSet([Interval(1, 5), Interval(3, 8)])
        assert merged.intervals == (Interval(1, 8),)

    def test_normalisation_merges_adjacent_closed(self):
        merged = IntervalSet([Interval(1, 2), Interval(2, 3)])
        assert merged.intervals == (Interval(1, 3),)

    def test_normalisation_keeps_gap_between_open(self):
        kept = IntervalSet(
            [Interval(1, 2, high_open=True), Interval(2, 3, low_open=True)]
        )
        assert len(kept.intervals) == 2
        assert not kept.contains(2)

    def test_merges_half_open_adjacency(self):
        merged = IntervalSet(
            [Interval(1, 2), Interval(2, 3, low_open=True)]
        )
        assert merged.intervals == (Interval(1, 3),)

    def test_empty_intervals_dropped(self):
        assert IntervalSet([Interval(5, 1)]).is_empty()

    def test_bounds(self):
        sets = IntervalSet([Interval(1, 2), Interval(5, None)])
        assert sets.lower_bound() == (1, False)
        assert sets.upper_bound() == (None, False)

    def test_at_least_at_most(self):
        assert IntervalSet.at_least(7).contains(7)
        assert not IntervalSet.at_least(7, strict=True).contains(7)
        assert IntervalSet.at_most(4).contains(4)
        assert not IntervalSet.at_most(4, strict=True).contains(4)


class TestIntervalSetAlgebra:
    def test_paper_rating_example(self):
        # Conformed RefereedPubl.oc1 (rating >= 4) against the Proceedings
        # type domain 1..10.
        domain = IntervalSet.closed(1, 10)
        atleast4 = IntervalSet.at_least(4)
        assert domain.intersect(atleast4) == IntervalSet.closed(4, 10)

    def test_complement_roundtrip(self):
        sets = IntervalSet([Interval(1, 5), Interval(10, 12)])
        assert sets.complement().complement() == sets

    def test_complement_of_point_excludes_it(self):
        assert not IntervalSet.point(3).complement().contains(3)
        assert IntervalSet.point(3).complement().contains(2.9)

    def test_difference(self):
        result = IntervalSet.closed(1, 10).difference(IntervalSet.closed(4, 6))
        assert result.contains(3)
        assert not result.contains(5)
        assert result.contains(7)
        assert not result.contains(4)

    def test_subset(self):
        assert IntervalSet.closed(2, 3).is_subset(IntervalSet.closed(1, 5))
        assert not IntervalSet.closed(0, 3).is_subset(IntervalSet.closed(1, 5))

    @given(interval_sets(), interval_sets(), probe_values)
    def test_intersection_semantics(self, a, b, probe):
        assert a.intersect(b).contains(probe) == (a.contains(probe) and b.contains(probe))

    @given(interval_sets(), interval_sets(), probe_values)
    def test_union_semantics(self, a, b, probe):
        assert a.union(b).contains(probe) == (a.contains(probe) or b.contains(probe))

    @given(interval_sets(), probe_values)
    def test_complement_semantics(self, a, probe):
        assert a.complement().contains(probe) == (not a.contains(probe))

    @given(interval_sets(), interval_sets())
    def test_subset_via_difference(self, a, b):
        assert a.is_subset(b) == a.difference(b).is_empty()

    @given(interval_sets())
    def test_canonical_equality(self, a):
        rebuilt = IntervalSet(a.intervals)
        assert rebuilt == a
        assert hash(rebuilt) == hash(a)


class TestTransformations:
    def test_scale_by_two_paper_conversion(self):
        # multiply(2) conversion of 'rating >= 2' (1..5 scale) to the 1..10
        # scale used by the bookseller: the value set doubles.
        assert IntervalSet.at_least(2).scale(2) == IntervalSet.at_least(4)

    def test_scale_negative_flips(self):
        scaled = IntervalSet.closed(1, 3).scale(-2)
        assert scaled == IntervalSet.closed(-6, -2)

    def test_scale_zero(self):
        assert IntervalSet.closed(1, 3).scale(0) == IntervalSet.point(0)

    def test_shift(self):
        assert IntervalSet.closed(1, 3).shift(10) == IntervalSet.closed(11, 13)

    def test_tighten_integral_open_bounds(self):
        tightened = IntervalSet([Interval(1, 5, low_open=True, high_open=True)]).tighten_integral()
        assert tightened == IntervalSet.closed(2, 4)

    def test_tighten_integral_fractional_bounds(self):
        tightened = IntervalSet([Interval(1.5, 3.5)]).tighten_integral()
        assert tightened == IntervalSet.closed(2, 3)

    def test_tighten_integral_drops_fraction_points(self):
        assert IntervalSet.point(2.5).tighten_integral().is_empty()

    def test_enumerate_integers(self):
        values = IntervalSet([Interval(1, 3), Interval(7, 8)]).enumerate_integers()
        assert values == (1, 2, 3, 7, 8)

    def test_enumerate_integers_unbounded_is_none(self):
        assert IntervalSet.at_least(3).enumerate_integers() is None

    def test_enumerate_integers_respects_limit(self):
        assert IntervalSet.closed(0, 10_000).enumerate_integers(limit=10) is None

    @given(interval_sets(), st.integers(-3, 3).filter(lambda k: k != 0), probe_values)
    def test_scale_membership(self, a, factor, probe):
        assert a.scale(factor).contains(probe * factor) == a.contains(probe)

    @given(interval_sets(), st.integers(-22, 22))
    def test_tighten_integral_preserves_integers(self, a, probe):
        assert a.tighten_integral().contains(probe) == a.contains(probe)
