"""Shared fixtures for the server tests: a reference-free schema that
every store flavor (plain, sharded, remote) accepts, a per-module
in-memory server, and a store factory covering all four flavors."""

import itertools

import pytest

from repro.client import connect
from repro.engine import ObjectStore, ShardedStore
from repro.server import ServerConfig, ServerThread
from repro.tm import parse_database

#: Reference-free so ShardedStore accepts it at any shard count: an
#: object constraint, a key constraint, and an aggregate over a settable
#: constant — one constraint of every enforcement flavor.
SERVLAB_SOURCE = """
Database ServLab

constants
  CAP = 1000

Class Alpha
attributes
  name  : string
  score : int
object constraints
  oc_a: score >= 0
class constraints
  cc_key: key name
  cc_sum: (sum (collect x for x in self) over score) < CAP
end Alpha

Class Beta
attributes
  label : string
  value : int
object constraints
  oc_b: value >= 0
end Beta
"""

_tenant_seq = itertools.count(1)


@pytest.fixture(scope="session")
def servlab_source():
    return SERVLAB_SOURCE


@pytest.fixture
def fresh_tenant():
    """A callable minting tenant ids no other test has touched."""
    return lambda: f"t{next(_tenant_seq)}"


@pytest.fixture(scope="module")
def server():
    """One in-memory server per test module; tests isolate by tenant."""
    thread = ServerThread(ServerConfig(idle_timeout=0.0))
    address = thread.start()
    yield address
    thread.stop()


@pytest.fixture(scope="module")
def store_factory(server):
    """``make(flavor)`` → a fresh ServLab store of the requested flavor:
    ``plain`` / ``sharded`` embedded, ``remote`` / ``remote-sharded``
    served.  Everything made here is closed at module teardown."""
    created = []

    def make(flavor):
        if flavor == "plain":
            store = ObjectStore(parse_database(SERVLAB_SOURCE))
        elif flavor == "sharded":
            store = ShardedStore(parse_database(SERVLAB_SOURCE), 2)
        elif flavor in ("remote", "remote-sharded"):
            store = connect(
                server,
                tenant=f"t{next(_tenant_seq)}",
                schema=SERVLAB_SOURCE,
                shards=2 if flavor == "remote-sharded" else None,
            )
        else:  # pragma: no cover - test bug
            raise AssertionError(f"unknown flavor {flavor!r}")
        created.append(store)
        return store

    yield make
    for store in created:
        store.close()
