"""Wire-protocol unit tests: framing, codecs, and the typed error mapping.

No server here — these exercise :mod:`repro.server.protocol` directly,
including the property the client leans its whole error model on: an
engine exception encoded on one end decodes to the *same class* with the
same structured payload on the other.
"""

import socket
import threading

import pytest

from repro.engine.enforcement import Violation
from repro.engine.explain import ConflictCore, CoreMember
from repro.engine.objects import DBObject
from repro.errors import (
    AdmissionError,
    ConnectionLostError,
    ConstraintViolation,
    ParseError,
    ProtocolError,
    SchemaError,
    ServerError,
    StorePoisonedError,
)
from repro.server import protocol


# -- framing -----------------------------------------------------------------


def test_frame_roundtrip():
    message = {"id": 7, "op": "insert", "state": {"x": 1.5, "y": [1, 2]}}
    frame = protocol.pack_frame(message)
    length = protocol.frame_length(frame[:4])
    assert length == len(frame) - 4
    assert protocol.decode_payload(frame[4:], "json") == message


def test_frame_length_refuses_oversize_before_allocation():
    prefix = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.frame_length(prefix)


def test_frame_length_refuses_truncated_prefix():
    with pytest.raises(ProtocolError, match="truncated"):
        protocol.frame_length(b"\x00\x00")


def test_decode_payload_rejects_garbage_and_non_mappings():
    with pytest.raises(ProtocolError, match="undecodable"):
        protocol.decode_payload(b"\xff\xfe not json", "json")
    with pytest.raises(ProtocolError, match="mapping"):
        protocol.decode_payload(b"[1,2,3]", "json")
    with pytest.raises(ProtocolError, match="unknown frame codec"):
        protocol.decode_payload(b"{}", "no-such-codec")


def test_recv_frame_reassembles_dribbled_bytes():
    """A frame delivered one byte at a time must still decode whole."""
    left, right = socket.socketpair()
    frame = protocol.pack_frame({"id": 1, "op": "hello"})

    def dribble():
        for i in range(len(frame)):
            left.sendall(frame[i : i + 1])
        left.close()

    feeder = threading.Thread(target=dribble)
    feeder.start()
    try:
        assert protocol.recv_frame(right) == {"id": 1, "op": "hello"}
        with pytest.raises(ConnectionLostError):
            protocol.recv_frame(right)  # feeder closed: EOF at boundary
    finally:
        feeder.join()
        right.close()


def test_recv_frame_mid_frame_eof_is_connection_lost():
    left, right = socket.socketpair()
    frame = protocol.pack_frame({"id": 1, "op": "hello"})
    left.sendall(frame[: len(frame) - 3])
    left.close()
    try:
        with pytest.raises(ConnectionLostError, match="mid-frame"):
            protocol.recv_frame(right)
    finally:
        right.close()


def test_negotiate_codec_always_lands_on_a_speakable_codec():
    assert protocol.negotiate_codec(None) == "json"
    assert protocol.negotiate_codec("json") == "json"
    # msgpack is negotiated only when importable; either way the answer
    # must be a codec this process actually speaks.
    assert protocol.negotiate_codec("msgpack") in protocol.available_codecs()
    assert protocol.negotiate_codec("no-such-codec") == "json"
    assert "json" in protocol.available_codecs()


# -- object / violation / core codecs ---------------------------------------


def test_object_roundtrip_preserves_set_values():
    obj = DBObject(
        "Alpha#3", "Alpha", {"name": "a", "tags": frozenset({"x", "y"})}
    )
    decoded = protocol.decode_object(protocol.encode_object(obj))
    assert decoded.oid == "Alpha#3"
    assert decoded.class_name == "Alpha"
    assert decoded.state["tags"] == frozenset({"x", "y"})
    # The wire form is json-safe: sets ride the WAL's {"$set": ...} codec.
    protocol.pack_frame({"object": protocol.encode_object(obj)})


def test_core_roundtrip_compares_equal_to_the_original():
    core = ConflictCore(
        constraint_name="ServLab.Alpha.cc_key",
        kind="class",
        members=(
            CoreMember("Alpha#1", "Alpha", reads=("name",)),
            CoreMember(
                "Alpha#2", "Alpha", bindings=(("x", "Alpha#2"),),
                reads=("name",),
            ),
        ),
        verdict="falsy",
        minimal=True,
        checks=5,
    )
    decoded = protocol.decode_core(protocol.encode_core(core))
    assert decoded == core  # ConflictCore equality covers members
    assert decoded.oids() == ("Alpha#1", "Alpha#2")
    assert decoded.describe() == core.describe()


# -- error mapping -----------------------------------------------------------


def _roundtrip(exc):
    return protocol.decode_error(protocol.encode_error(exc))


def test_constraint_violation_roundtrips_with_structure():
    violation = ConstraintViolation(
        "transaction",
        "2 constraint(s) violated",
        violations=[
            Violation("ServLab.Alpha.oc_a", "object Alpha#1"),
            Violation("ServLab.Alpha.cc_key", "duplicate key"),
        ],
        cores=[
            ConflictCore(
                constraint_name="ServLab.Alpha.cc_key",
                kind="class",
                members=(CoreMember("Alpha#1", "Alpha"),),
            )
        ],
    )
    decoded = _roundtrip(violation)
    assert type(decoded) is ConstraintViolation
    assert decoded.constraint_name == "transaction"
    assert decoded.constraint_names == (
        "ServLab.Alpha.oc_a",
        "ServLab.Alpha.cc_key",
    )
    assert decoded.violations == violation.violations
    assert decoded.cores == violation.cores
    assert str(decoded) == str(violation)


@pytest.mark.parametrize(
    "exc",
    [
        StorePoisonedError("store degraded to read-only"),
        SchemaError("tenant 'x' is not registered"),
        ProtocolError("unknown operation 'frobnicate'"),
        ConnectionLostError("peer closed"),
    ],
)
def test_plain_errors_roundtrip_as_their_own_class(exc):
    decoded = _roundtrip(exc)
    assert type(decoded) is type(exc)
    assert str(decoded) == str(exc)


def test_admission_error_keeps_retryable_flag():
    assert _roundtrip(AdmissionError("full", retryable=True)).retryable is True
    assert _roundtrip(AdmissionError("no", retryable=False)).retryable is False


def test_parse_error_keeps_position():
    decoded = _roundtrip(ParseError("bad token", line=3, column=9))
    assert type(decoded) is ParseError
    assert (decoded.line, decoded.column) == (3, 9)


def test_unknown_kind_degrades_to_server_error():
    decoded = protocol.decode_error(
        {"kind": "FutureError", "message": "from a newer server"}
    )
    assert type(decoded) is ServerError
    assert "FutureError" in str(decoded)
    assert "from a newer server" in str(decoded)


def test_non_repro_exception_encodes_and_degrades():
    encoded = protocol.encode_error(RuntimeError("engine invariant broken"))
    decoded = protocol.decode_error(encoded)
    assert type(decoded) is ServerError
    assert "engine invariant broken" in str(decoded)


def test_response_shapes():
    ok = protocol.ok_response(5, value=1)
    assert ok == {"id": 5, "ok": True, "value": 1}
    err = protocol.error_response(6, SchemaError("nope"))
    assert err["id"] == 6 and err["ok"] is False
    assert err["error"]["kind"] == "SchemaError"
