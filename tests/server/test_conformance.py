"""StoreAPI conformance: one shared history, every store flavor.

The tentpole property of the serving PR: a
:class:`~repro.client.RemoteStore` is *observably identical* to the
embedded stores.  One deterministic operation history — inserts, updates,
deletes, constant rebinds, committed/aborted/violating transactions,
unknown classes and oids — runs against four flavors:

* the embedded :class:`~repro.engine.store.ObjectStore`,
* the embedded :class:`~repro.engine.sharding.ShardedStore` (2 shards),
* a remote plain store (served tenant, in-memory),
* a remote sharded store (served tenant, 2 shards),

and every observable must agree *positionally* (oids differ across
sharded flavors — ``Alpha#2`` vs ``Alpha#0.2`` — so positions in creation
order are the cross-flavor identity): per-op outcomes including the
violated constraint names and error classes, surviving object states,
audit verdicts, explain cores, and snapshot reads.
"""

import pytest

from repro.engine.api import SnapshotAPI, StoreAPI, TransactionAPI
from repro.errors import ConstraintViolation, EngineError

FLAVORS = ("plain", "sharded", "remote", "remote-sharded")


class _Abort(Exception):
    """Client-side abort marker for transaction brackets."""


#: The shared history.  Update/delete targets are indexes into the
#: live-oid list at execution time, so every flavor resolves them
#: identically without naming flavor-specific oids.
HISTORY = [
    ("insert", "Alpha", {"name": "a1", "score": 10}),
    ("insert", "Alpha", {"name": "a2", "score": 20}),
    ("insert", "Beta", {"label": "b1", "value": 5}),
    ("insert", "Alpha", {"name": "bad", "score": -1}),  # oc_a
    ("insert", "Alpha", {"name": "a1", "score": 1}),  # cc_key duplicate
    ("update", 0, {"score": 15}),
    ("update", 0, {"score": -5}),  # oc_a
    ("update", 2, {"value": 7}),
    ("delete", 1),
    ("insert", "Alpha", {"name": "a2", "score": 30}),  # key free again
    ("txn", [
        ("insert", "Alpha", {"name": "t1", "score": 1}),
        ("insert", "Alpha", {"name": "t2", "score": 2}),
    ], False),
    ("txn", [  # transient duplicate fixed before commit: must pass
        ("insert", "Alpha", {"name": "t1", "score": 3}),
        ("update", -1, {"name": "t3"}),
    ], False),
    ("txn", [  # aborted by the client: must leave no trace
        ("insert", "Alpha", {"name": "gone", "score": 9}),
    ], True),
    ("txn", [  # violates at commit: cc_key on t2
        ("insert", "Alpha", {"name": "t4", "score": 4}),
        ("insert", "Alpha", {"name": "t2", "score": 5}),
    ], False),
    ("constant", 40),
    ("insert", "Alpha", {"name": "big", "score": 500}),  # cc_sum over CAP
    ("constant", 1000),
    ("insert", "Alpha", {"name": "big", "score": 500}),  # now fine
    ("insert", "NoSuchClass", {"x": 1}),  # UnknownClassError
    ("update", 99, {"score": 1}),  # index far past live count: wraps
    ("delete", 0),
]


def apply_history(store, ops):
    """Run ``ops``; return (positional oids, per-op outcomes)."""
    oids = []
    outcomes = []

    def target(idx):
        live = [oid for oid in oids if oid is not None]
        return live[idx % len(live)] if live else None

    def one(op):
        kind = op[0]
        if kind == "insert":
            _, class_name, fields = op
            oids.append(store.insert(class_name, **fields).oid)
        elif kind == "update":
            _, idx, fields = op
            store.update(target(idx), **fields)
        elif kind == "delete":
            _, idx = op
            victim = target(idx)
            store.delete(victim)
            oids[oids.index(victim)] = None
        elif kind == "constant":
            store.set_constant("CAP", op[1])
        else:  # pragma: no cover - history bug
            raise AssertionError(f"unknown op {kind!r}")
        return "ok"

    for op in ops:
        checkpoint = list(oids)
        try:
            if op[0] == "txn":
                _, subops, abort = op
                with store.transaction():
                    for sub in subops:
                        one(sub)
                    if abort:
                        raise _Abort()
                outcomes.append(("txn-ok",))
            else:
                outcomes.append((one(op),))
        except _Abort:
            oids[:] = checkpoint
            outcomes.append(("abort",))
        except ConstraintViolation as exc:
            oids[:] = checkpoint
            outcomes.append(("violation", exc.constraint_names))
        except EngineError as exc:
            oids[:] = checkpoint
            outcomes.append(("error", type(exc).__name__))
    return oids, outcomes


def observable_state(store, oids):
    """States of surviving objects, in creation order (oid-agnostic)."""
    survivors = []
    for oid in oids:
        if oid is None:
            continue
        obj = store.get(oid)
        survivors.append((obj.class_name, dict(obj.state)))
    return survivors


@pytest.fixture(scope="module")
def traces(store_factory):
    """Run the whole history once per flavor; tests compare the traces."""
    result = {}
    for flavor in FLAVORS:
        store = store_factory(flavor)
        oids, outcomes = apply_history(store, HISTORY)
        result[flavor] = {"store": store, "oids": oids, "outcomes": outcomes}
    return result


def test_every_flavor_satisfies_store_api(store_factory):
    for flavor in FLAVORS:
        store = store_factory(flavor)
        assert isinstance(store, StoreAPI), flavor
        assert isinstance(store.transaction(), TransactionAPI), flavor
        with store.snapshot() as snapshot:
            assert isinstance(snapshot, SnapshotAPI), flavor


def test_outcomes_identical_across_flavors(traces):
    reference = traces["plain"]["outcomes"]
    # The history must actually exercise the interesting paths.
    assert ("violation", ("ServLab.Alpha.oc_a",)) in reference
    assert any(
        outcome[0] == "violation"
        and "ServLab.Alpha.cc_key" in outcome[1]
        for outcome in reference
    )
    assert ("abort",) in reference
    assert ("error", "UnknownClassError") in reference
    for flavor in FLAVORS[1:]:
        assert traces[flavor]["outcomes"] == reference, flavor


def test_survivors_identical_across_flavors(traces):
    reference = observable_state(
        traces["plain"]["store"], traces["plain"]["oids"]
    )
    assert reference, "history must leave survivors"
    for flavor in FLAVORS[1:]:
        entry = traces[flavor]
        assert observable_state(entry["store"], entry["oids"]) == reference, (
            flavor
        )


def test_liveness_pattern_and_len_identical(traces):
    reference = [oid is None for oid in traces["plain"]["oids"]]
    for flavor in FLAVORS[1:]:
        assert [oid is None for oid in traces[flavor]["oids"]] == reference
    sizes = {flavor: len(traces[flavor]["store"]) for flavor in FLAVORS}
    assert len(set(sizes.values())) == 1, sizes


def test_audit_and_snapshots_agree(traces):
    for flavor in FLAVORS:
        assert traces[flavor]["store"].audit() == [], flavor
        assert traces[flavor]["store"].check_all() == [], flavor
    reference = None
    for flavor in FLAVORS:
        entry = traces[flavor]
        with entry["store"].snapshot() as snapshot:
            seen = observable_state(snapshot, entry["oids"])
            live = sum(1 for oid in entry["oids"] if oid is not None)
            assert len(snapshot) == live, flavor
        if reference is None:
            reference = seen
        else:
            assert seen == reference, flavor


def test_standing_violations_audit_and_explain_identically(store_factory):
    """Bypass commit validation, then compare audit verdicts and conflict
    cores across an embedded and a remote store."""
    reports = {}
    for flavor in ("plain", "remote"):
        store = store_factory(flavor)
        store.insert("Alpha", name="k1", score=1)
        with store.transaction(validate=False):
            store.insert("Alpha", name="k1", score=2)  # duplicate key
        verdicts = [(v.constraint_name, v.detail) for v in store.audit()]
        cores = store.explain_violations()
        reports[flavor] = {
            "verdicts": verdicts,
            "cores": [
                (core.constraint_name, core.kind, len(core.members))
                for core in cores
            ],
        }
    assert reports["plain"]["verdicts"], "violation must stand"
    assert reports["plain"]["cores"], "explain must find cores"
    assert reports["remote"] == reports["plain"]


def test_remote_violation_carries_cores_like_embedded(store_factory):
    """A commit-time rejection delivers the same structured payload
    remotely as the embedded bracket raises in-process."""
    failures = {}
    for flavor in ("plain", "remote"):
        store = store_factory(flavor)
        store.insert("Alpha", name="dup", score=1)
        with pytest.raises(ConstraintViolation) as excinfo:
            with store.transaction():
                store.insert("Alpha", name="dup", score=2)
        failures[flavor] = excinfo.value
    emb, rem = failures["plain"], failures["remote"]
    assert rem.constraint_names == emb.constraint_names
    assert rem.violations == emb.violations
    assert [core.constraint_name for core in rem.cores] == [
        core.constraint_name for core in emb.cores
    ]
    assert str(rem) == str(emb)
