"""Server lifecycle and tenancy: admission, eviction, shutdown, failure.

The edges the conformance suite does not reach: what happens when a
client disconnects mid-transaction, when the connection limit is hit,
when a tenant idles past its timeout, and when the server shuts down with
durable state open.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.client import connect
from repro.engine import ObjectStore
from repro.errors import (
    AdmissionError,
    ConnectionLostError,
    ConstraintViolation,
    ProtocolError,
    SchemaError,
)
from repro.server import ServerConfig, ServerThread
from repro.server.protocol import OP_TXN_COMMIT


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- tenancy ----------------------------------------------------------------


def test_tenants_are_isolated(server, servlab_source, fresh_tenant):
    """Same schema, separate stores: constants, extents and constraint
    enforcement in one tenant never leak into another."""
    a = connect(server, tenant=fresh_tenant(), schema=servlab_source)
    b = connect(server, tenant=fresh_tenant(), schema=servlab_source)
    try:
        a.set_constant("CAP", 5)
        with pytest.raises(ConstraintViolation):
            a.insert("Alpha", name="x", score=100)
        # Tenant b still runs with CAP = 1000: the same insert is fine.
        b.insert("Alpha", name="x", score=100)
        assert len(a) == 0 and len(b) == 1
    finally:
        a.close()
        b.close()


def test_first_open_of_memory_tenant_requires_schema(server, fresh_tenant):
    with pytest.raises(SchemaError, match="not registered"):
        connect(server, tenant=fresh_tenant())


def test_reregistering_a_different_database_is_refused(
    server, servlab_source, fresh_tenant
):
    tenant = fresh_tenant()
    first = connect(server, tenant=tenant, schema=servlab_source)
    try:
        other = servlab_source.replace("Database ServLab", "Database Other")
        with pytest.raises(SchemaError, match="cannot re-register"):
            connect(server, tenant=tenant, schema=other)
        # Repeating the same registration is fine (idempotent open).
        again = connect(server, tenant=tenant, schema=servlab_source)
        again.close()
    finally:
        first.close()


def test_hostile_tenant_ids_are_refused(server, servlab_source):
    for bad in ("../escape", "", "a/b", ".hidden", "x" * 80):
        with pytest.raises(ProtocolError, match="invalid tenant id"):
            connect(server, tenant=bad, schema=servlab_source)


# -- admission control -------------------------------------------------------


def test_admission_rejects_surplus_connection_with_retryable_frame(
    servlab_source,
):
    thread = ServerThread(
        ServerConfig(max_connections=1, idle_timeout=0.0)
    )
    address = thread.start()
    try:
        first = connect(address, tenant="only", schema=servlab_source)
        try:
            with pytest.raises(AdmissionError) as excinfo:
                connect(address)
            assert excinfo.value.retryable is True
            assert "limit" in str(excinfo.value)
        finally:
            first.close()
        # The slot freed: the retry the error invited now succeeds.
        assert _wait_until(lambda: thread.server.connection_count == 0)
        retry = connect(address, tenant="only")
        retry.close()
    finally:
        thread.stop()


# -- idle eviction -----------------------------------------------------------


def test_idle_tenant_is_checkpointed_and_evicted(tmp_path, servlab_source):
    thread = ServerThread(
        ServerConfig(root=tmp_path, idle_timeout=0.2)
    )
    address = thread.start()
    try:
        store = connect(address, tenant="sleepy", schema=servlab_source)
        store.insert("Alpha", name="a", score=1)
        registry = thread.server.registry
        assert registry.open_tenants() == ["sleepy"]
        store.close()
        # The sweep must close the unleased store within the timeout
        # (plus sweep interval); a leased store would never be evicted.
        assert _wait_until(lambda: registry.open_tenants() == [])
        # Eviction checkpointed first: recovery starts from a snapshot.
        assert (tmp_path / "sleepy" / "snapshot.json").exists()
        # Re-opening needs no schema (durable) and sees the data.
        again = connect(address, tenant="sleepy")
        try:
            assert [obj.state["name"] for obj in again.extent("Alpha")] == ["a"]
        finally:
            again.close()
    finally:
        thread.stop()


def test_leased_tenant_survives_the_sweep(tmp_path, servlab_source):
    thread = ServerThread(ServerConfig(root=tmp_path, idle_timeout=0.1))
    address = thread.start()
    try:
        store = connect(address, tenant="busy", schema=servlab_source)
        try:
            time.sleep(0.4)  # several sweep intervals
            assert thread.server.registry.open_tenants() == ["busy"]
            store.insert("Alpha", name="still-here", score=1)
        finally:
            store.close()
    finally:
        thread.stop()


# -- clean shutdown ----------------------------------------------------------


def test_shutdown_checkpoints_durable_tenants(tmp_path, servlab_source):
    thread = ServerThread(ServerConfig(root=tmp_path, idle_timeout=0.0))
    address = thread.start()
    store = connect(address, tenant="acme", schema=servlab_source)
    store.insert("Alpha", name="kept", score=7)
    # Stop with the connection still open: the server drains it, releases
    # the lease, checkpoints and closes the store.
    thread.stop()
    assert (tmp_path / "acme" / "snapshot.json").exists()
    reopened = ObjectStore.open(tmp_path / "acme")
    try:
        assert [obj.state["name"] for obj in reopened.extent("Alpha")] == [
            "kept"
        ]
        assert reopened.audit() == []
    finally:
        reopened.close()


# -- disconnect handling -----------------------------------------------------


def test_mid_transaction_disconnect_rolls_back_without_poisoning(
    tmp_path, servlab_source
):
    thread = ServerThread(ServerConfig(root=tmp_path, idle_timeout=0.0))
    address = thread.start()
    try:
        doomed = connect(address, tenant="acme", schema=servlab_source)
        doomed.insert("Alpha", name="base", score=1)
        txn = doomed.transaction()
        txn.__enter__()
        doomed.insert("Alpha", name="uncommitted", score=2)
        # Tear the socket down with the transaction open — no abort frame.
        doomed._sock.close()

        survivor = connect(address, tenant="acme")
        try:
            # The server rolls the orphaned transaction back on the dead
            # connection's own worker thread; only the committed row stays.
            assert _wait_until(lambda: len(survivor) == 1)
            assert [obj.state["name"] for obj in survivor.extent("Alpha")] == [
                "base"
            ]
            # The store is not poisoned: writes and audits still work.
            survivor.insert("Alpha", name="after", score=3)
            assert survivor.audit() == []
            survivor.checkpoint()
        finally:
            survivor.close()
    finally:
        thread.stop()


def test_protocol_abuse_closes_the_connection(
    server, servlab_source, fresh_tenant
):
    store = connect(server, tenant=fresh_tenant(), schema=servlab_source)
    with pytest.raises(ProtocolError, match="without an open transaction"):
        store._call(OP_TXN_COMMIT)
    # A protocol error is a hangup: the frame stream is not trusted after.
    with pytest.raises(ConnectionLostError):
        store.insert("Alpha", name="x", score=1)
    store.close()


def test_unknown_operation_is_a_protocol_error(server):
    store = connect(server)
    with pytest.raises(ProtocolError, match="unknown operation"):
        store._call("frobnicate")
    store.close()


def test_ops_without_open_tenant_are_protocol_errors(server):
    store = connect(server)
    try:
        with pytest.raises(ProtocolError, match="no tenant opened"):
            store.insert("Alpha", name="x", score=1)
    finally:
        store.close()


# -- codec negotiation -------------------------------------------------------


def test_codec_negotiation_falls_back_to_json(server):
    """Asking for msgpack must work whether or not the optional dependency
    is importable — the connection lands on a codec both ends speak."""
    store = connect(server, codec="msgpack")
    try:
        from repro.server.protocol import available_codecs

        assert store.server_info["codec"] in available_codecs()
        if "msgpack" not in available_codecs():
            assert store.server_info["codec"] == "json"
    finally:
        store.close()


# -- the CLI -----------------------------------------------------------------


def test_cli_serve_socket_smoke(tmp_path, servlab_source):
    """``repro serve`` end to end: spawn the process, read the port file,
    run real traffic against a durable tenant, SIGINT, verify the clean
    shutdown checkpointed the store."""
    port_file = tmp_path / "port"
    root = tmp_path / "stores"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--root", str(root), "--seconds", "60",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert _wait_until(port_file.exists, timeout=30.0)
        port = int(port_file.read_text().strip())
        store = connect(
            ("127.0.0.1", port), tenant="cli", schema=servlab_source
        )
        store.insert("Alpha", name="via-cli", score=1)
        with pytest.raises(ConstraintViolation):
            store.insert("Alpha", name="via-cli", score=2)
        assert store.stats()["tenant"]["durable"] is True
        store.close()
        process.send_signal(signal.SIGINT)
        output, _ = process.communicate(timeout=30)
        assert process.returncode == 0, output
        assert "clean shutdown" in output
        assert (root / "cli" / "snapshot.json").exists()
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
